"""Experiment drivers and metrics for the paper's evaluation section."""

from repro.analysis.metrics import (
    serial_time,
    speedup,
    efficiency,
    relative_deviation,
)
from repro.analysis.comparison import (
    StyleComparison,
    compare_spmd_mpmd,
    sweep_system_sizes,
    predicted_vs_measured,
    phi_vs_tpsa,
)
from repro.analysis.reports import (
    comparison_table,
    deviation_table,
    prediction_table,
)
from repro.analysis.sensitivity import (
    SensitivityPoint,
    communication_sensitivity,
    sensitivity_table,
)
from repro.analysis.calibration import (
    Table1Refit,
    measure_kernel_times,
    measure_transfer_components,
    refit_table1,
    refit_table2,
)

__all__ = [
    "serial_time",
    "speedup",
    "efficiency",
    "relative_deviation",
    "StyleComparison",
    "compare_spmd_mpmd",
    "sweep_system_sizes",
    "predicted_vs_measured",
    "phi_vs_tpsa",
    "comparison_table",
    "deviation_table",
    "prediction_table",
    "SensitivityPoint",
    "communication_sensitivity",
    "sensitivity_table",
    "Table1Refit",
    "measure_kernel_times",
    "measure_transfer_components",
    "refit_table1",
    "refit_table2",
]
