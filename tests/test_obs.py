"""Unit tests for the ``repro.obs`` telemetry layer."""

import json

import pytest

from repro import obs


@pytest.fixture
def telemetry():
    t = obs.Telemetry(sinks=[obs.MemorySink()])
    with obs.use(t):
        yield t


class TestSpans:
    def test_nesting_depth_and_parent(self, telemetry):
        with obs.span("outer"):
            with obs.span("middle"):
                with obs.span("inner"):
                    pass
        by_name = {s.name: s for s in telemetry.spans}
        assert by_name["outer"].depth == 0
        assert by_name["outer"].parent is None
        assert by_name["middle"].depth == 1
        assert by_name["middle"].parent == "outer"
        assert by_name["inner"].depth == 2
        assert by_name["inner"].parent == "middle"

    def test_finish_order_inner_first(self, telemetry):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert [s.name for s in telemetry.spans] == ["inner", "outer"]

    def test_duration_non_negative_and_nested_within(self, telemetry):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = telemetry.spans
        assert inner.duration >= 0.0
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_attrs_via_kwargs_and_set_attr(self, telemetry):
        with obs.span("phase", machine="cm5") as sp:
            sp.set_attr("phi", 1.25)
        (span,) = telemetry.spans
        assert span.attrs == {"machine": "cm5", "phi": 1.25}

    def test_exception_recorded_and_propagated(self, telemetry):
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        (span,) = telemetry.spans
        assert span.attrs["error"] == "ValueError"

    def test_span_event_emitted(self, telemetry):
        with obs.span("phase", k=1):
            obs.event("decision", choice="a")
        events = telemetry.collected_events()
        kinds = [e["type"] for e in events]
        assert kinds == ["run_start", "event", "span"]
        assert events[1]["span"] == "phase"
        span_event = events[2]
        assert span_event["name"] == "phase"
        assert span_event["attrs"] == {"k": 1}
        assert span_event["dur"] >= 0.0


class TestMetrics:
    def test_counter_aggregates(self, telemetry):
        obs.counter("c").inc()
        obs.counter("c").inc(2.5)
        assert telemetry.metrics.snapshot()["counters"]["c"] == 3.5

    def test_counter_rejects_negative(self, telemetry):
        with pytest.raises(ValueError):
            obs.counter("c").inc(-1)

    def test_gauge_last_write_wins(self, telemetry):
        obs.gauge("g").set(1.0)
        obs.gauge("g").set(0.25)
        gauge = telemetry.metrics.gauges["g"]
        assert gauge.value == 0.25
        assert gauge.updates == 2

    def test_histogram_stats(self, telemetry):
        for v in (1.0, 2.0, 3.0, 4.0):
            obs.histogram("h").observe(v)
        stats = telemetry.metrics.snapshot()["histograms"]["h"]
        assert stats["count"] == 4
        assert stats["sum"] == 10.0
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["mean"] == 2.5
        assert stats["p50"] == 2.5

    def test_histogram_reservoir_cap_keeps_exact_aggregates(self, telemetry):
        from repro.obs.metrics import RESERVOIR_SIZE

        h = obs.histogram("big")
        for i in range(RESERVOIR_SIZE + 100):
            h.observe(float(i))
        assert h.count == RESERVOIR_SIZE + 100
        assert h.maximum == float(RESERVOIR_SIZE + 99)
        assert len(h.samples) == RESERVOIR_SIZE

    def test_snapshot_is_json_serializable(self, telemetry):
        obs.counter("c").inc()
        obs.gauge("g").set(1.0)
        obs.histogram("h").observe(2.0)
        json.dumps(telemetry.metrics.snapshot())


class TestPercentileSmallSamples:
    """Tail percentiles over few samples must never undersell the tail.

    With n samples, interpolation can only resolve quantiles up to
    1 - 1/n; a p95 over 4 observations computed by interpolation reads
    *below* the worst sample seen, which is exactly the wrong direction
    for a tail-latency figure. The policy: unresolvable upper tails
    return the maximum (nearest-rank-higher); resolvable quantiles keep
    numpy-style linear interpolation.
    """

    def _hist(self, values):
        from repro.obs.metrics import Histogram

        h = Histogram("h")
        for v in values:
            h.observe(float(v))
        return h

    def test_p95_with_four_samples_returns_max(self):
        h = self._hist([1.0, 2.0, 3.0, 10.0])
        assert h.percentile(95.0) == 10.0

    def test_p95_with_nineteen_samples_returns_max(self):
        # 19 * 0.05 < 1: the top 5% contains less than one sample.
        h = self._hist(range(1, 20))
        assert h.percentile(95.0) == 19.0

    def test_p95_with_twenty_samples_interpolates(self):
        # 20 * 0.05 == 1: the tail is (just) resolvable.
        h = self._hist(range(1, 21))
        assert h.percentile(95.0) == pytest.approx(19.05)
        assert h.percentile(95.0) < h.maximum

    def test_p75_with_three_samples_returns_max(self):
        h = self._hist([1.0, 2.0, 4.0])
        assert h.percentile(75.0) == 4.0

    def test_p50_interpolation_unchanged(self):
        # The median is always resolvable; small n keeps interpolating.
        assert self._hist([1.0, 2.0, 3.0, 4.0]).percentile(50.0) == 2.5
        assert self._hist([1.0, 3.0]).percentile(50.0) == 2.0

    def test_extremes_and_single_sample(self):
        h = self._hist([5.0])
        assert h.percentile(50.0) == 5.0
        many = self._hist([1.0, 2.0, 3.0])
        assert many.percentile(0.0) == 1.0
        assert many.percentile(100.0) == 3.0

    def test_empty_histogram_is_zero(self):
        assert self._hist([]).percentile(95.0) == 0.0

    def test_out_of_range_q_rejected(self):
        h = self._hist([1.0])
        with pytest.raises(ValueError):
            h.percentile(-1.0)
        with pytest.raises(ValueError):
            h.percentile(101.0)

    def test_snapshot_p95_never_below_max_for_small_n(self):
        for n in range(1, 20):
            h = self._hist(range(n))
            stats = h.as_dict()
            assert stats["p95"] == stats["max"], f"n={n}"


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        telemetry = obs.configure(jsonl_path=str(path), memory=True)
        try:
            with obs.span("phase", n=2):
                obs.event("inner", detail="x")
            obs.counter("c").inc(3)
        finally:
            obs.shutdown()
        events = obs.read_jsonl(path)
        types = [e["type"] for e in events]
        assert types == ["run_start", "event", "span", "metrics"]
        assert events[2]["attrs"] == {"n": 2}
        # The closing snapshot carries the metrics.
        assert events[-1]["metrics"]["counters"]["c"] == 3

    def test_unserializable_attr_degrades_to_repr(self, tmp_path):
        path = tmp_path / "run.jsonl"
        telemetry = obs.configure(jsonl_path=str(path), memory=False)
        try:
            telemetry.event("odd", payload=object())
        finally:
            obs.shutdown()
        events = obs.read_jsonl(path)
        odd = [e for e in events if e.get("name") == "odd"][0]
        assert "object" in odd["payload"]


class TestGlobalState:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert isinstance(obs.get(), obs.NullTelemetry)

    def test_noop_when_disabled(self):
        # Everything works and records nothing.
        with obs.span("phase", k=1) as sp:
            sp.set_attr("x", 2)
            obs.event("e", a=1)
        obs.counter("c").inc()
        obs.gauge("g").set(1.0)
        obs.histogram("h").observe(1.0)
        assert obs.get().collected_events() == []
        assert obs.get().spans == ()

    def test_configure_and_shutdown(self, tmp_path):
        telemetry = obs.configure()
        try:
            assert obs.enabled()
            assert obs.get() is telemetry
        finally:
            obs.shutdown()
        assert not obs.enabled()

    def test_use_restores_previous(self):
        t = obs.Telemetry(sinks=[obs.MemorySink()])
        with obs.use(t):
            assert obs.get() is t
            obs.event("inside")
        assert not obs.enabled()
        assert [e["type"] for e in t.collected_events()] == ["run_start", "event"]

    def test_instrumented_library_code_runs_disabled(self, cm5_16):
        # The whole pipeline must run untouched with telemetry off.
        from repro.pipeline import compile_mdg
        from repro.programs import complex_matmul_program

        assert not obs.enabled()
        result = compile_mdg(complex_matmul_program(16).mdg, cm5_16)
        assert result.predicted_makespan > 0


class TestReport:
    def test_report_contains_spans_and_metrics(self, telemetry):
        with obs.span("compile"):
            with obs.span("allocate"):
                pass
        obs.counter("solver.attempts").inc(4)
        obs.histogram("solver.iterations").observe(29)
        text = obs.render_report(telemetry)
        assert "compile" in text
        assert "  allocate" in text  # indented child
        assert "solver.attempts" in text
        assert "solver.iterations" in text

    def test_empty_report(self, telemetry):
        text = obs.render_report(telemetry)
        assert "run report" in text
