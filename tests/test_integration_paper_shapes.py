"""Integration tests asserting the paper's qualitative results.

These encode the *shapes* of Section 6's evaluation — who wins, how gaps
move with system size — on the simulated CM-5. Absolute numbers differ
from the authors' testbed; the relationships must not.
"""

import pytest

from repro.analysis.comparison import (
    phi_vs_tpsa,
    predicted_vs_measured,
    sweep_system_sizes,
)
from repro.machine.fidelity import HardwareFidelity
from repro.machine.presets import cm5
from repro.pipeline import compile_mdg, compile_spmd, measure
from repro.programs import complex_matmul_program, strassen_program

SIZES = (16, 32, 64)


@pytest.fixture(scope="module")
def complex_rows():
    return sweep_system_sizes(complex_matmul_program(64).mdg, cm5(64), SIZES)


@pytest.fixture(scope="module")
def strassen_rows():
    return sweep_system_sizes(strassen_program(128).mdg, cm5(64), SIZES)


class TestFigure8Shapes:
    """MPMD (mixed parallelism) beats SPMD, and the gap grows with p."""

    def test_mpmd_wins_everywhere_complex(self, complex_rows):
        for row in complex_rows:
            assert row.mpmd_advantage > 1.0, row

    def test_mpmd_wins_everywhere_strassen(self, strassen_rows):
        for row in strassen_rows:
            assert row.mpmd_advantage > 1.0, row

    def test_advantage_grows_with_system_size(self, complex_rows):
        advantages = [r.mpmd_advantage for r in complex_rows]
        assert advantages[0] < advantages[1] < advantages[2]

    def test_mpmd_speedup_increases_with_p(self, complex_rows):
        speedups = [r.mpmd_speedup for r in complex_rows]
        assert speedups[0] < speedups[1] < speedups[2]

    def test_efficiency_decays_but_slower_for_mpmd(self, complex_rows):
        for row in complex_rows:
            assert row.mpmd_efficiency > row.spmd_efficiency
        spmd_eff = [r.spmd_efficiency for r in complex_rows]
        mpmd_eff = [r.mpmd_efficiency for r in complex_rows]
        assert spmd_eff[0] > spmd_eff[-1]
        # Relative efficiency loss 16 -> 64 is milder for MPMD.
        assert mpmd_eff[-1] / mpmd_eff[0] > spmd_eff[-1] / spmd_eff[0]

    def test_strassen_exposes_more_functional_parallelism(
        self, complex_rows, strassen_rows
    ):
        """Strassen's 33-loop MDG gives MPMD at least as much headroom on
        the biggest machine as the 10-loop ComplexMM."""
        assert strassen_rows[-1].mpmd_advantage > 1.1


class TestFigure9Shapes:
    """Predicted and measured times stay close under realistic fidelity."""

    @pytest.mark.parametrize(
        "bundle_factory", [lambda: complex_matmul_program(64), lambda: strassen_program(128)]
    )
    @pytest.mark.parametrize("p", [16, 64])
    def test_prediction_within_twenty_percent(self, bundle_factory, p):
        points = predicted_vs_measured(
            bundle_factory().mdg, cm5(p), HardwareFidelity.cm5_like()
        )
        for point in points:
            assert 0.8 <= point.normalized_prediction <= 1.25, point


class TestTable3Shapes:
    """T_psa deviates from Phi by small percentages only."""

    @pytest.mark.parametrize("p", SIZES)
    def test_complex_deviation_small(self, p):
        point = phi_vs_tpsa(complex_matmul_program(64).mdg, cm5(p))
        assert abs(point.percent_change) < 20.0, point

    @pytest.mark.parametrize("p", SIZES)
    def test_strassen_deviation_small(self, p):
        point = phi_vs_tpsa(strassen_program(128).mdg, cm5(p))
        assert abs(point.percent_change) < 20.0, point

    def test_phi_in_paper_ballpark(self):
        """With Table 1/2 constants, Phi for ComplexMM(64) on 64 procs
        should land near the paper's 0.054 s (same order, within 2x)."""
        point = phi_vs_tpsa(complex_matmul_program(64).mdg, cm5(64))
        assert 0.027 < point.phi < 0.108


class TestMotivatingExampleShape:
    """Section 1.2: mixed allocation beats naive on the 3-node example."""

    def test_mixed_beats_naive(self, machine4):
        from repro.graph.generators import paper_example_mdg

        mdg = paper_example_mdg().normalized()
        mpmd = compile_mdg(mdg, machine4)
        spmd = compile_spmd(mdg, machine4)
        t_mixed = measure(mpmd, record_trace=False).makespan
        t_naive = measure(spmd, record_trace=False).makespan
        assert t_mixed < t_naive
        # Same qualitative gap as 14.3 s vs 15.6 s (about 9%).
        assert t_naive / t_mixed > 1.05
