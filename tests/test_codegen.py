"""Unit tests for MPMD/SPMD program generation."""

import pytest

from repro.allocation.solver import solve_allocation
from repro.codegen.mpmd import generate_mpmd_program
from repro.codegen.program import ComputeOp, MPMDProgram, RecvOp, SendOp
from repro.codegen.spmd import generate_spmd_program
from repro.costs.node_weights import MDGCostModel
from repro.errors import CodegenError
from repro.graph.generators import fork_join_mdg, paper_example_mdg
from repro.scheduling.psa import PSAOptions, prioritized_schedule
from repro.scheduling.schedule import Schedule


def compile_example(machine, mdg=None, bound="machine"):
    mdg = (mdg or paper_example_mdg()).normalized()
    alloc = solve_allocation(mdg, machine)
    schedule = prioritized_schedule(
        mdg, alloc.processors, machine, PSAOptions(processor_bound=bound)
    )
    return mdg, schedule, generate_mpmd_program(schedule, machine)


class TestOps:
    def test_compute_op_rejects_negative(self):
        with pytest.raises(CodegenError):
            ComputeOp("n", -1.0)

    def test_compute_op_rejects_parallel_exceeding_total(self):
        with pytest.raises(CodegenError):
            ComputeOp("n", 1.0, parallel_cost=2.0)

    def test_send_recv_reject_negative(self):
        with pytest.raises(CodegenError):
            SendOp("a", "b", -1.0, 0.0)
        with pytest.raises(CodegenError):
            RecvOp("a", "b", 0.0, 0.0, network_delay=-1.0)

    def test_edge_property(self):
        assert SendOp("a", "b", 0.0, 0.0).edge == ("a", "b")
        assert RecvOp("a", "b", 0.0, 0.0).edge == ("a", "b")


class TestMPMDGeneration:
    def test_every_processor_in_group_gets_node_ops(self, machine4):
        mdg, schedule, program = compile_example(machine4)
        for entry in schedule.entries.values():
            for proc in entry.processors:
                nodes_on_proc = {
                    op.node
                    for op in program.stream(proc)
                    if isinstance(op, ComputeOp)
                }
                assert entry.name in nodes_on_proc

    def test_recv_compute_send_order_within_node(self, cm5_16):
        mdg, schedule, program = compile_example(cm5_16, fork_join_mdg(2, seed=1))
        for proc, stream in program.streams.items():
            # Group consecutive ops by node; within each group the kinds
            # must be recvs, then one compute, then sends.
            current_node = None
            phase = 0  # 0 = recv, 1 = compute done, 2 = sends
            for op in stream:
                node = op.node if isinstance(op, ComputeOp) else (
                    op.target if isinstance(op, RecvOp) else op.source
                )
                if node != current_node:
                    current_node = node
                    phase = 0
                if isinstance(op, RecvOp):
                    assert phase == 0, f"recv after compute on proc {proc}"
                elif isinstance(op, ComputeOp):
                    assert phase == 0
                    phase = 2
                else:
                    assert phase == 2, f"send before compute on proc {proc}"

    def test_costs_match_analytic_weights(self, cm5_16):
        """Sum of a node's op costs on one processor equals its weight T_i."""
        mdg, schedule, program = compile_example(cm5_16, fork_join_mdg(2, seed=1))
        weights = schedule.info["weights"]
        for entry in schedule.entries.values():
            proc = entry.processors[0]
            total = 0.0
            for op in program.stream(proc):
                if isinstance(op, ComputeOp) and op.node == entry.name:
                    total += op.cost
                elif isinstance(op, RecvOp) and op.target == entry.name:
                    total += op.startup_cost + op.byte_cost
                elif isinstance(op, SendOp) and op.source == entry.name:
                    total += op.startup_cost + op.byte_cost
            assert total == pytest.approx(weights.node_weight(entry.name))

    def test_network_delay_matches_edge_weight(self, cm5_16):
        mdg, schedule, program = compile_example(cm5_16, fork_join_mdg(2, seed=1))
        weights = schedule.info["weights"]
        for proc, op in program.instructions():
            if isinstance(op, RecvOp):
                assert op.network_delay == pytest.approx(
                    weights.edge_weight(op.source, op.target)
                )

    def test_sync_messages_for_bare_edges(self, machine4):
        """Edges without transfers become zero-cost message pairs."""
        mdg, schedule, program = compile_example(machine4)
        edges = {(e.source, e.target) for e in mdg.edges()}
        send_edges = {
            op.edge for _, op in program.instructions() if isinstance(op, SendOp)
        }
        assert send_edges == edges

    def test_senders_receivers_registered(self, machine4):
        mdg, schedule, program = compile_example(machine4)
        for edge in mdg.edges():
            key = (edge.source, edge.target)
            assert program.senders[key] == schedule.entry(edge.source).processors
            assert program.receivers[key] == schedule.entry(edge.target).processors

    def test_incomplete_schedule_rejected(self, machine4):
        mdg = paper_example_mdg().normalized()
        with pytest.raises(CodegenError, match="incomplete"):
            generate_mpmd_program(
                Schedule(mdg=mdg, total_processors=4), machine4
            )

    def test_parallel_cost_is_shrinkable_part(self, machine4):
        mdg, schedule, program = compile_example(machine4)
        for proc, op in program.instructions():
            if isinstance(op, ComputeOp) and op.cost > 0:
                model = mdg.node(op.node).processing
                serial_floor = model.cost(1.0e15)
                assert op.cost - op.parallel_cost == pytest.approx(
                    serial_floor, rel=1e-6
                )

    def test_validate_catches_unmatched_edges(self):
        program = MPMDProgram(total_processors=2)
        program.streams[0] = [SendOp("a", "b", 0.0, 0.0)]
        program.senders[("a", "b")] = (0,)
        with pytest.raises(CodegenError, match="unmatched"):
            program.validate()

    def test_stream_bounds_checked(self, machine4):
        _, _, program = compile_example(machine4)
        with pytest.raises(CodegenError):
            program.stream(99)


class TestSPMDGeneration:
    def test_all_streams_identical(self, cm5_16):
        program = generate_spmd_program(fork_join_mdg(3, seed=2), cm5_16)
        streams = list(program.streams.values())
        assert all(s == streams[0] for s in streams)
        assert program.info["style"] == "SPMD"

    def test_every_processor_participates(self, cm5_16):
        program = generate_spmd_program(fork_join_mdg(3, seed=2), cm5_16)
        assert len(program.streams) == 16
