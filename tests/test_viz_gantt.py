"""Unit tests for ASCII Gantt rendering."""

import pytest

from repro.allocation.solver import solve_allocation
from repro.errors import ValidationError
from repro.graph.generators import paper_example_mdg
from repro.pipeline import compile_mdg, measure
from repro.scheduling.psa import PSAOptions, prioritized_schedule
from repro.viz.gantt import schedule_gantt, trace_gantt


@pytest.fixture
def example_schedule(machine4):
    mdg = paper_example_mdg().normalized()
    alloc = solve_allocation(mdg, machine4)
    return prioritized_schedule(
        mdg, alloc.processors, machine4, PSAOptions(processor_bound="machine")
    )


class TestScheduleGantt:
    def test_one_row_per_processor(self, example_schedule):
        text = schedule_gantt(example_schedule)
        rows = [line for line in text.splitlines() if line.startswith("P")]
        assert len(rows) == 4

    def test_legend_lists_real_nodes(self, example_schedule):
        text = schedule_gantt(example_schedule)
        assert "N1" in text
        assert "N2" in text
        # Dummy STOP hidden from the legend.
        assert "__STOP__" not in text

    def test_concurrent_nodes_on_distinct_rows(self, example_schedule):
        text = schedule_gantt(example_schedule, width=40)
        rows = [line for line in text.splitlines() if line.startswith("P")]
        legend = text.splitlines()[-1]
        # Find symbols for N2 and N3 from the legend.
        sym = {}
        for item in legend.replace("legend: ", "").split(", "):
            s, name = item.split("=")
            sym[name] = s
        rows_with_n2 = [r for r in rows if sym["N2"] in r]
        rows_with_n3 = [r for r in rows if sym["N3"] in r]
        assert len(rows_with_n2) == 2
        assert len(rows_with_n3) == 2
        assert not {id(r) for r in rows_with_n2} & {id(r) for r in rows_with_n3}

    def test_width_respected(self, example_schedule):
        text = schedule_gantt(example_schedule, width=30)
        rows = [line for line in text.splitlines() if line.startswith("P")]
        for row in rows:
            bar = row.split("|")[1]
            assert len(bar) == 30

    def test_width_validation(self, example_schedule):
        with pytest.raises(ValidationError):
            schedule_gantt(example_schedule, width=5)

    def test_empty_schedule(self, machine4):
        from repro.scheduling.schedule import Schedule

        empty = Schedule(mdg=paper_example_mdg(), total_processors=4)
        assert "empty" in schedule_gantt(empty)


class TestTraceGantt:
    def test_renders_simulation(self, machine4):
        mdg = paper_example_mdg().normalized()
        result = compile_mdg(mdg, machine4)
        sim = measure(result)
        text = trace_gantt(sim.trace, 4)
        assert text.count("P ") >= 0
        assert "legend:" in text

    def test_message_ops_lowercase(self, cm5_16):
        from repro.programs import complex_matmul_program

        result = compile_mdg(complex_matmul_program(16).mdg, cm5_16)
        sim = measure(result)
        text = trace_gantt(sim.trace, 16)
        bars = "".join(
            line.split("|")[1] for line in text.splitlines() if line.startswith("P")
        )
        assert any(c.islower() for c in bars)  # sends/recvs present

    def test_empty_trace(self):
        from repro.sim.trace import ExecutionTrace

        assert "empty" in trace_gantt(ExecutionTrace(), 2)
