"""Unit tests for the KKT optimality certificate."""

import pytest

from repro.allocation.certificate import certify_allocation
from repro.allocation.formulation import ConvexAllocationProblem
from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.errors import SolverError
from repro.graph.generators import (
    fork_join_mdg,
    layered_random_mdg,
    paper_example_mdg,
)
from repro.machine.presets import cm5


class TestCertificate:
    def test_solver_output_certifies(self, machine4):
        mdg = paper_example_mdg().normalized()
        allocation = solve_allocation(mdg, machine4)
        problem = ConvexAllocationProblem(mdg, machine4)
        cert = certify_allocation(problem, allocation)
        assert cert.is_optimal()
        assert cert.phi == pytest.approx(allocation.phi, rel=1e-3)

    def test_certifies_with_transfers(self, cm5_16):
        mdg = fork_join_mdg(3, seed=1).normalized()
        allocation = solve_allocation(mdg, cm5_16)
        problem = ConvexAllocationProblem(mdg, cm5_16)
        cert = certify_allocation(problem, allocation)
        assert cert.is_optimal(stationarity_tol=1e-3)

    def test_rejects_suboptimal_point(self, cm5_16):
        mdg = fork_join_mdg(3, seed=1).normalized()
        allocation = solve_allocation(mdg, cm5_16)
        problem = ConvexAllocationProblem(mdg, cm5_16)
        # Interior, clearly non-optimal point: everything on 2 processors.
        bad = allocation.with_processors(
            {name: 2.0 for name in allocation.processors}
        )
        cert = certify_allocation(problem, bad)
        assert not cert.is_optimal()
        assert cert.stationarity_residual > 1e-3

    def test_certificate_fields(self, machine4):
        mdg = paper_example_mdg().normalized()
        allocation = solve_allocation(mdg, machine4)
        problem = ConvexAllocationProblem(mdg, machine4)
        cert = certify_allocation(problem, allocation)
        assert cert.n_active >= 1
        assert cert.max_violation <= 1e-6

    def test_missing_node_rejected(self, machine4):
        mdg = paper_example_mdg().normalized()
        allocation = solve_allocation(mdg, machine4)
        problem = ConvexAllocationProblem(mdg, machine4)
        partial = allocation.with_processors({"N1": 4.0})
        with pytest.raises(SolverError, match="missing"):
            certify_allocation(problem, partial)

    @pytest.mark.parametrize("seed", [3, 17, 51])
    def test_random_graphs_certify(self, seed):
        machine = cm5(32)
        mdg = layered_random_mdg(3, 3, seed=seed).normalized()
        allocation = solve_allocation(
            mdg, machine, ConvexSolverOptions(multistart_targets=(8.0,))
        )
        problem = ConvexAllocationProblem(mdg, machine)
        cert = certify_allocation(problem, allocation)
        assert cert.is_optimal(stationarity_tol=1e-2), cert
