"""`repro check` CLI behavior and the pipeline pre-flight gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.costs.processing import AmdahlProcessingCost
from repro.errors import CheckError
from repro.graph.generators import paper_example_mdg
from repro.graph.mdg import MDG
from repro.graph.serialization import save_mdg
from repro.pipeline import compile_mdg, run_resumable


@pytest.fixture
def valid_file(tmp_path):
    path = tmp_path / "valid.json"
    save_mdg(paper_example_mdg(), path)
    return path


@pytest.fixture
def invalid_file(tmp_path):
    path = tmp_path / "invalid.json"
    path.write_text(json.dumps({
        "schema_version": 1,
        "name": "bad",
        "nodes": [
            {"name": "a",
             "processing": {"kind": "amdahl", "alpha": 2.0, "tau": -1.0}},
            {"name": "b", "processing": {"kind": "zero"}},
        ],
        "edges": [
            {"source": "a", "target": "b", "transfers": []},
            {"source": "b", "target": "a", "transfers": []},
        ],
    }))
    return path


def cyclic_mdg():
    mdg = MDG("cyclic")
    for n in "abc":
        mdg.add_node(n, AmdahlProcessingCost(0.1, 1.0))
    mdg.add_edge("a", "b", [])
    mdg.add_edge("b", "c", [])
    mdg.add_edge("c", "a", [])
    return mdg


class TestCheckCommand:
    def test_valid_file_exits_zero(self, capsys, valid_file):
        assert main(["check", str(valid_file), "-p", "8"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_invalid_file_exits_one(self, capsys, invalid_file):
        assert main(["check", str(invalid_file), "--no-compile"]) == 1
        out = capsys.readouterr().out
        assert "MDG001" in out  # the cycle
        assert "COST003" in out  # the bad Amdahl parameters

    def test_directory_target(self, capsys, tmp_path, invalid_file):
        assert main(["check", str(tmp_path), "--no-compile"]) == 1

    def test_fail_on_threshold(self, tmp_path, capsys):
        # A graph with only a warning (isolated node) passes at the
        # default error threshold but fails at --fail-on warning.
        path = tmp_path / "warn.json"
        path.write_text(json.dumps({
            "schema_version": 1,
            "name": "warn",
            "nodes": [
                {"name": "a", "processing": {"kind": "zero"}},
                {"name": "b", "processing": {"kind": "zero"}},
                {"name": "c", "processing": {"kind": "zero"}},
            ],
            "edges": [{"source": "a", "target": "b", "transfers": []}],
        }))
        assert main(["check", str(path), "--no-compile"]) == 0
        capsys.readouterr()
        assert main(
            ["check", str(path), "--no-compile", "--fail-on", "warning"]
        ) == 1

    def test_sarif_output(self, capsys, tmp_path, invalid_file):
        out_path = tmp_path / "report.sarif"
        assert main([
            "check", str(invalid_file), "--no-compile",
            "--format", "sarif", "-o", str(out_path),
        ]) == 1
        log = json.loads(out_path.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]
        assert any(
            r["ruleId"] == "MDG001" for r in log["runs"][0]["results"]
        )

    def test_json_format(self, capsys, invalid_file):
        assert main(
            ["check", str(invalid_file), "--no-compile", "--format", "json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] >= 2
        assert payload["artifacts"] == [str(invalid_file)]

    def test_program_target(self, capsys):
        assert main([
            "check", "--program", "complex", "--n", "16", "-p", "4",
            "--no-compile",
        ]) == 0

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("MDG001", "COST003", "SCHED002", "IR001"):
            assert rule_id in out

    def test_unreadable_file_is_structured_error(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["check", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_nonexistent_target_is_structured_error(self, capsys, tmp_path):
        assert main(["check", str(tmp_path / "missing.json")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "missing.json" in err

    def test_empty_directory_target_is_structured_error(self, capsys, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["check", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "no *.json" in err

    def test_nonexistent_target_does_not_fall_back_to_builtins(
        self, capsys, tmp_path
    ):
        # A typo'd path must never silently audit the built-in corpus.
        assert main(["check", str(tmp_path / "nope")]) == 2
        out = capsys.readouterr().out
        assert "artifact(s)" not in out

    def test_markdown_report_format(self, capsys, invalid_file):
        assert main(
            ["check", str(invalid_file), "--no-compile", "--format", "markdown"]
        ) == 1
        out = capsys.readouterr().out
        assert "# Static-analysis report" in out
        assert "MDG001" in out

    def test_compile_with_check_flag(self, capsys):
        assert main([
            "compile", "--program", "complex", "--n", "16", "-p", "4",
            "--check",
        ]) == 0


class TestPipelineGate:
    def test_compile_rejects_cyclic_mdg_before_solver(self, machine4):
        with pytest.raises(CheckError, match="MDG001"):
            compile_mdg(cyclic_mdg(), machine4, check=True)

    def test_run_resumable_rejects_cyclic_mdg(self, machine4):
        with pytest.raises(CheckError, match="MDG001"):
            run_resumable(cyclic_mdg(), machine4, cache_dir=None, check=True)

    def test_gate_off_by_default_raises_cycle_error_instead(self, machine4):
        from repro.errors import CycleError

        with pytest.raises(CycleError):
            compile_mdg(cyclic_mdg(), machine4)

    def test_check_strict_rejects_warnings(self, machine4):
        mdg = MDG("isolated")
        for n in "abc":
            mdg.add_node(n, AmdahlProcessingCost(0.1, 1.0))
        mdg.add_edge("a", "b", [])  # c is isolated -> MDG006 warning
        with pytest.raises(CheckError, match="MDG006"):
            compile_mdg(mdg, machine4, check_strict=True)
        # Plain check lets warnings through.
        result = compile_mdg(mdg, machine4, check=True)
        assert result.schedule.makespan > 0

    def test_clean_mdg_compiles_with_gate(self, machine4):
        result = compile_mdg(paper_example_mdg(), machine4, check=True)
        assert result.phi is not None
