"""Unit tests for the Prioritized Scheduling Algorithm."""

import pytest

from repro.allocation.rounding import optimal_processor_bound
from repro.allocation.solver import solve_allocation
from repro.costs.processing import AmdahlProcessingCost
from repro.errors import SchedulingError
from repro.graph.generators import (
    chain_mdg,
    fork_join_mdg,
    layered_random_mdg,
    paper_example_mdg,
)
from repro.graph.mdg import MDG
from repro.scheduling.psa import PSAOptions, prioritized_schedule
from repro.utils.intmath import is_power_of_two


class TestPSAOnMotivatingExample:
    def test_reproduces_figure2_mixed_schedule(self, machine4):
        """N1 on all 4 processors, then N2 and N3 concurrently on 2 each."""
        mdg = paper_example_mdg().normalized()
        alloc = solve_allocation(mdg, machine4)
        schedule = prioritized_schedule(
            mdg, alloc.processors, machine4, PSAOptions(processor_bound="machine")
        )
        n1, n2, n3 = (schedule.entry(n) for n in ("N1", "N2", "N3"))
        assert n1.width == 4
        assert n2.width == 2 and n3.width == 2
        # Concurrent: same start, disjoint processors.
        assert n2.start == pytest.approx(n3.start)
        assert not set(n2.processors) & set(n3.processors)
        assert schedule.makespan == pytest.approx(15.75)

    def test_mixed_beats_naive_spmd(self, machine4):
        from repro.scheduling.baselines import spmd_schedule

        mdg = paper_example_mdg().normalized()
        alloc = solve_allocation(mdg, machine4)
        mixed = prioritized_schedule(
            mdg, alloc.processors, machine4, PSAOptions(processor_bound="machine")
        )
        naive = spmd_schedule(mdg, machine4)
        assert mixed.makespan < naive.makespan


class TestPSAMechanics:
    def test_respects_processor_bound(self, cm5_16):
        mdg = fork_join_mdg(2, seed=0).normalized()
        schedule = prioritized_schedule(
            mdg,
            {name: 16.0 for name in mdg.node_names()},
            cm5_16,
            PSAOptions(processor_bound=4),
        )
        assert all(e.width <= 4 for e in schedule)
        assert schedule.info["processor_bound"] == 4

    def test_default_bound_is_corollary1(self, cm5_16):
        mdg = fork_join_mdg(2, seed=0).normalized()
        schedule = prioritized_schedule(
            mdg, {name: 2.0 for name in mdg.node_names()}, cm5_16
        )
        assert schedule.info["processor_bound"] == optimal_processor_bound(16)

    def test_rounding_applied(self, cm5_16):
        mdg = fork_join_mdg(2, seed=0).normalized()
        schedule = prioritized_schedule(
            mdg, {name: 3.1 for name in mdg.node_names()}, cm5_16
        )
        for width in schedule.allocation().values():
            assert is_power_of_two(width)

    def test_round_off_disabled_requires_powers(self, cm5_16):
        mdg = fork_join_mdg(2, seed=0).normalized()
        with pytest.raises(SchedulingError, match="round_off"):
            prioritized_schedule(
                mdg,
                {name: 3.0 for name in mdg.node_names()},
                cm5_16,
                PSAOptions(round_off=False),
            )

    def test_missing_non_dummy_node_rejected(self, cm5_16):
        mdg = fork_join_mdg(2, seed=0).normalized()
        with pytest.raises(SchedulingError, match="missing"):
            prioritized_schedule(mdg, {"fork": 2.0}, cm5_16)

    def test_dummy_nodes_defaulted(self, machine4):
        mdg = paper_example_mdg().normalized()  # dummy STOP added
        alloc = {"N1": 4.0, "N2": 2.0, "N3": 2.0}  # no STOP entry
        schedule = prioritized_schedule(mdg, alloc, machine4)
        assert schedule.is_complete

    def test_over_allocation_rejected(self, machine4):
        mdg = paper_example_mdg().normalized()
        with pytest.raises(SchedulingError, match="exceeds"):
            prioritized_schedule(
                mdg, {"N1": 64.0, "N2": 2.0, "N3": 2.0}, machine4
            )

    def test_invalid_bound_values(self, machine4):
        mdg = paper_example_mdg().normalized()
        alloc = {"N1": 4.0, "N2": 2.0, "N3": 2.0}
        with pytest.raises(SchedulingError):
            prioritized_schedule(mdg, alloc, machine4, PSAOptions(processor_bound=3))
        with pytest.raises(SchedulingError):
            prioritized_schedule(mdg, alloc, machine4, PSAOptions(processor_bound=8))
        with pytest.raises(SchedulingError):
            prioritized_schedule(
                mdg, alloc, machine4, PSAOptions(processor_bound="half")
            )

    def test_schedule_is_validated(self, cm5_16):
        """PSA output passes the full independent invariant check."""
        mdg = layered_random_mdg(3, 3, seed=6).normalized()
        alloc = solve_allocation(mdg, cm5_16)
        schedule = prioritized_schedule(mdg, alloc.processors, cm5_16)
        schedule.validate(schedule.info["weights"])  # must not raise

    def test_deterministic(self, cm5_16):
        mdg = layered_random_mdg(3, 3, seed=6).normalized()
        alloc = solve_allocation(mdg, cm5_16)
        s1 = prioritized_schedule(mdg, alloc.processors, cm5_16)
        s2 = prioritized_schedule(mdg, alloc.processors, cm5_16)
        assert s1.makespan == s2.makespan
        assert {n: e.processors for n, e in s1.entries.items()} == {
            n: e.processors for n, e in s2.entries.items()
        }

    def test_chain_serializes(self, machine4):
        mdg = chain_mdg(4, seed=0, transfer_probability=0.0).normalized()
        schedule = prioritized_schedule(
            mdg,
            {name: 4.0 for name in mdg.node_names()},
            machine4,
            PSAOptions(processor_bound="machine"),
        )
        entries = sorted(schedule.entries.values(), key=lambda e: e.start)
        for first, second in zip(entries, entries[1:]):
            assert second.start >= first.finish - 1e-12

    def test_non_power_of_two_machine(self):
        """p = 6: nodes cap at 4 (largest power of two that fits)."""
        from repro.costs.transfer import TransferCostParameters
        from repro.machine.parameters import MachineParameters

        machine = MachineParameters("m6", 6, TransferCostParameters.zero())
        mdg = fork_join_mdg(2, seed=0, transfer_probability=0.0).normalized()
        schedule = prioritized_schedule(
            mdg,
            {name: 6.0 for name in mdg.node_names()},
            machine,
            PSAOptions(processor_bound="machine"),
        )
        assert all(e.width <= 4 for e in schedule)
        schedule.validate(schedule.info["weights"])


class TestPSAQuality:
    def test_makespan_at_least_lower_bound(self, cm5_16):
        from repro.costs.node_weights import MDGCostModel

        mdg = layered_random_mdg(4, 3, seed=12).normalized()
        alloc = solve_allocation(mdg, cm5_16)
        schedule = prioritized_schedule(mdg, alloc.processors, cm5_16)
        cm = MDGCostModel(mdg, cm5_16.transfer_model())
        lower = cm.makespan_lower_bound(schedule.info["allocation"], 16)
        assert schedule.makespan >= lower * (1 - 1e-9)

    def test_no_forced_idleness_when_machine_wide_node_ready(self, machine4):
        """A single-node graph starts immediately at t = 0."""
        mdg = MDG("solo")
        mdg.add_node("only", AmdahlProcessingCost(0.1, 1.0))
        schedule = prioritized_schedule(mdg, {"only": 4.0}, machine4)
        assert schedule.entry("only").start == 0.0
