"""Pinning the PSA's priority semantics (Section 3, step 4).

The PSA picks the ready node with the *lowest EST*, even when another
ready node could start (or finish) earlier — the paper explicitly notes
the scheduler may then sit idle "since we have picked the node with the
lowest EST". These tests build a graph where that choice is visible and
verify the PSA and EFT genuinely diverge, plus the idling-situation
bound underlying Theorem 1's proof.
"""

import pytest

from repro.costs.processing import AmdahlProcessingCost, ZeroProcessingCost
from repro.costs.transfer import ArrayTransfer, TransferCostParameters, TransferKind
from repro.graph.mdg import MDG
from repro.machine.parameters import MachineParameters
from repro.scheduling.psa import PSAOptions, prioritized_schedule
from repro.scheduling.variants import eft_schedule


def delayed_choice_mdg():
    """P feeds A (no transfer, EST 1) and B (big network delay, EST 6).

    On a 1-processor machine: the PSA (lowest EST) runs the long A first;
    EFT (earliest finish) runs the short B first and eats the idle gap
    waiting for B's data.
    """
    machine = MachineParameters(
        "delay",
        1,
        # Only network delay is non-zero: 5 seconds for the transfer.
        TransferCostParameters(t_ss=0.0, t_ps=0.0, t_sr=0.0, t_pr=0.0, t_n=5.0),
    )
    mdg = MDG("choice")
    mdg.add_node("P", AmdahlProcessingCost(1.0, 1.0))  # exactly 1 s serial
    mdg.add_node("A", AmdahlProcessingCost(1.0, 10.0))  # long, data-free
    mdg.add_node("B", AmdahlProcessingCost(1.0, 1.0))  # short, delayed data
    mdg.add_edge("P", "A")
    mdg.add_edge("P", "B", [ArrayTransfer(1.0, TransferKind.ROW2ROW)])
    return mdg.normalized(), machine


class TestPriorityDivergence:
    def test_psa_runs_lowest_est_first(self):
        mdg, machine = delayed_choice_mdg()
        alloc = {name: 1.0 for name in mdg.node_names()}
        schedule = prioritized_schedule(mdg, alloc, machine)
        a, b = schedule.entry("A"), schedule.entry("B")
        assert a.start < b.start  # lowest EST (A at 1) chosen over B
        # A runs [1, 11]; B's EST is 6 but the processor frees at 11.
        assert a.start == pytest.approx(1.0)
        assert b.start == pytest.approx(11.0)
        assert schedule.makespan == pytest.approx(12.0)

    def test_eft_prefers_the_early_finisher(self):
        mdg, machine = delayed_choice_mdg()
        alloc = {name: 1.0 for name in mdg.node_names()}
        schedule = eft_schedule(mdg, alloc, machine)
        a, b = schedule.entry("A"), schedule.entry("B")
        assert b.start < a.start  # B finishes at 7 < A's 11: EFT takes it
        # ... paying 5 seconds of forced idleness [1, 6].
        assert b.start == pytest.approx(6.0)
        assert a.start == pytest.approx(7.0)
        assert schedule.makespan == pytest.approx(17.0)

    def test_both_schedules_validate(self):
        mdg, machine = delayed_choice_mdg()
        alloc = {name: 1.0 for name in mdg.node_names()}
        for scheduler in (prioritized_schedule, eft_schedule):
            schedule = scheduler(mdg, alloc, machine)
            schedule.validate(schedule.info["weights"])


class TestIdlingSituations:
    def test_idle_time_bounded_by_critical_path(self):
        """Theorem 1's core claim: total idling-situation time is bounded
        by the critical path. On the 1-processor divergent graph the
        PSA's idle area equals the gap before P starts... which is zero;
        EFT's forced idle (5 s) stays below C_p."""
        from repro.costs.node_weights import MDGCostModel

        mdg, machine = delayed_choice_mdg()
        alloc = {name: 1.0 for name in mdg.node_names()}
        cm = MDGCostModel(mdg, machine.transfer_model())
        critical = cm.critical_path_time({n: 1 for n in mdg.node_names()})
        for scheduler in (prioritized_schedule, eft_schedule):
            schedule = scheduler(mdg, alloc, machine)
            assert schedule.idle_area() <= critical * machine.processors

    def test_network_delay_creates_genuine_gap(self):
        """With every node and one processor, the EFT schedule contains a
        window where the machine is provably idle although work exists —
        the 'idling situation' of the Theorem 1 proof."""
        mdg, machine = delayed_choice_mdg()
        alloc = {name: 1.0 for name in mdg.node_names()}
        schedule = eft_schedule(mdg, alloc, machine)
        assert schedule.concurrency_at(3.0) == 0  # inside [1, 6]
        assert schedule.concurrency_at(6.5) == 1
