"""Unit tests for the graph pass family (MDG001-MDG009)."""

from __future__ import annotations

from repro.check import Severity, check_document, check_mdg
from repro.graph.generators import paper_example_mdg


def amdahl(alpha=0.1, tau=1.0):
    return {"kind": "amdahl", "alpha": alpha, "tau": tau}


def doc(nodes, edges):
    return {
        "schema_version": 1,
        "name": "t",
        "nodes": [{"name": n, "processing": amdahl()} for n in nodes],
        "edges": [
            {"source": s, "target": t, "transfers": list(transfers)}
            for s, t, transfers in edges
        ],
    }


def rule_ids(report):
    return {f.rule_id for f in report.findings}


class TestStructure:
    def test_clean_graph_has_no_graph_findings(self):
        report = check_mdg(paper_example_mdg(), compile_schedule=False)
        assert not rule_ids(report) & {f"MDG00{i}" for i in range(1, 10)}

    def test_cycle(self):
        report = check_document(
            doc("ab", [("a", "b", []), ("b", "a", [])])
        )
        findings = [f for f in report.findings if f.rule_id == "MDG001"]
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert "'a'" in findings[0].message and "'b'" in findings[0].message

    def test_self_loop(self):
        report = check_document(doc("ab", [("a", "a", []), ("a", "b", [])]))
        (finding,) = [f for f in report.findings if f.rule_id == "MDG002"]
        assert finding.location == "$.edges[0]"

    def test_duplicate_edge_is_warning(self):
        report = check_document(
            doc("ab", [("a", "b", []), ("a", "b", [])])
        )
        (finding,) = [f for f in report.findings if f.rule_id == "MDG003"]
        assert finding.severity is Severity.WARNING
        assert finding.location == "$.edges[1]"

    def test_dangling_endpoint(self):
        report = check_document(doc("ab", [("a", "ghost", []), ("a", "b", [])]))
        (finding,) = [f for f in report.findings if f.rule_id == "MDG004"]
        assert "ghost" in finding.message

    def test_duplicate_node_names(self):
        bad = doc("ab", [("a", "b", [])])
        bad["nodes"].append({"name": "a", "processing": amdahl()})
        report = check_document(bad)
        (finding,) = [f for f in report.findings if f.rule_id == "MDG005"]
        assert finding.location == "$.nodes[2]"

    def test_isolated_node(self):
        report = check_document(doc("abc", [("a", "b", [])]))
        (finding,) = [f for f in report.findings if f.rule_id == "MDG006"]
        assert "'c'" in finding.message
        assert finding.severity is Severity.WARNING

    def test_single_node_not_isolated(self):
        report = check_document(doc("a", []))
        assert "MDG006" not in rule_ids(report)

    def test_empty_graph(self):
        report = check_document(doc("", []))
        assert "MDG007" in rule_ids(report)
        assert report.has_errors


class TestWeights:
    def transfer(self, length, kind="row2row"):
        return {"length_bytes": length, "kind": kind, "label": "X"}

    def test_negative_length(self):
        report = check_document(
            doc("ab", [("a", "b", [self.transfer(-8)])])
        )
        (finding,) = [f for f in report.findings if f.rule_id == "MDG008"]
        assert finding.location == "$.edges[0].transfers[0]"

    def test_non_finite_and_non_numeric_lengths(self):
        report = check_document(
            doc(
                "ab",
                [("a", "b", [self.transfer(float("inf")),
                             self.transfer("big"),
                             self.transfer(True),
                             self.transfer(0)])],
            )
        )
        assert sum(f.rule_id == "MDG008" for f in report.findings) == 4

    def test_positive_length_clean(self):
        report = check_document(doc("ab", [("a", "b", [self.transfer(64)])]))
        assert "MDG008" not in rule_ids(report)


class TestRedistribution:
    def transfer(self, kind, label="X"):
        return {"length_bytes": 64, "kind": kind, "label": label}

    def test_conflicting_source_distributions(self):
        report = check_document(
            doc(
                "abc",
                [
                    ("a", "b", [self.transfer("row2row")]),
                    ("a", "c", [self.transfer("col2col")]),
                ],
            )
        )
        findings = [f for f in report.findings if f.rule_id == "MDG009"]
        assert findings and all(f.severity is Severity.WARNING for f in findings)
        assert any("sends" in f.message for f in findings)

    def test_conflicting_target_distributions(self):
        report = check_document(
            doc(
                "abc",
                [
                    ("a", "c", [self.transfer("row2row")]),
                    ("b", "c", [self.transfer("row2col")]),
                ],
            )
        )
        assert any(
            f.rule_id == "MDG009" and "receives" in f.message
            for f in report.findings
        )

    def test_different_arrays_do_not_conflict(self):
        report = check_document(
            doc(
                "abc",
                [
                    ("a", "b", [self.transfer("row2row", "X")]),
                    ("a", "c", [self.transfer("col2col", "Y")]),
                ],
            )
        )
        assert "MDG009" not in rule_ids(report)

    def test_consistent_redistribution_clean(self):
        report = check_document(
            doc(
                "abc",
                [
                    ("a", "b", [self.transfer("row2col")]),
                    ("a", "c", [self.transfer("row2row")]),
                ],
            )
        )
        assert "MDG009" not in rule_ids(report)
