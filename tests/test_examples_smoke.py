"""Smoke tests: every example is importable and the fast ones run.

The heavyweight demos (full paper sizes) are exercised by the benchmark
suite; here we assert the example scripts stay syntactically valid, have
a ``main``, and that the quick ones execute end to end.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


class TestExampleHygiene:
    def test_expected_examples_present(self):
        assert "quickstart.py" in ALL_EXAMPLES
        assert len(ALL_EXAMPLES) >= 8

    @pytest.mark.parametrize("filename", ALL_EXAMPLES)
    def test_importable_with_main(self, filename):
        path = EXAMPLES_DIR / filename
        spec = importlib.util.spec_from_file_location(
            f"example_{filename[:-3]}", path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # import side effects only
        assert hasattr(module, "main"), f"{filename} must define main()"

    @pytest.mark.parametrize("filename", ALL_EXAMPLES)
    def test_has_docstring_and_run_line(self, filename):
        text = (EXAMPLES_DIR / filename).read_text()
        assert text.lstrip().startswith(('"""', "#!")), filename
        assert "Run:" in text, f"{filename} should say how to run it"


class TestQuickstartExecutes:
    def test_quickstart_runs_and_reports_win(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "faster" in result.stdout
        assert "convex optimum Phi" in result.stdout
