"""Run-log robustness: validation, tolerant reads, concurrent writers, CLI."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.obs.runlog import SCHEMA_PROBLEM, STRUCTURE_PROBLEM, run_log_problems
from repro.obs.sinks import JsonlSink, read_jsonl, read_run_log


def span(name, ts, dur, depth, parent=None, job=None):
    record = {
        "type": "span",
        "name": name,
        "ts": ts,
        "dur": dur,
        "depth": depth,
        "parent": parent,
        "attrs": {},
    }
    if job is not None:
        record["job"] = job
        record["attrs"]["job"] = job
    return record


GOOD = [
    {"type": "run_start", "ts": 0.0},
    span("allocate", 0.1, 0.4, 1, "compile"),
    span("schedule", 0.5, 0.3, 1, "compile"),
    span("compile", 0.0, 1.0, 0),
    {"type": "event", "name": "done", "ts": 1.0},
    {"type": "metrics", "ts": 1.0, "metrics": {}},
]


def write_log(tmp_path, records, name="run.jsonl"):
    path = tmp_path / name
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


class TestRunLogProblems:
    def test_clean_log(self):
        assert run_log_problems(GOOD) == []

    def test_missing_type(self):
        problems = run_log_problems([{"ts": 0.0}])
        assert any(
            kind == SCHEMA_PROBLEM and "missing string 'type'" in msg
            for kind, msg in problems
        )

    def test_unknown_type(self):
        problems = run_log_problems([{"type": "trace", "ts": 0.0}])
        assert any("unknown record type" in msg for _, msg in problems)

    def test_span_without_duration_is_schema_problem(self):
        bad = {"type": "span", "name": "allocate", "ts": 0.0, "depth": 0}
        kinds = {k for k, _ in run_log_problems([bad])}
        assert SCHEMA_PROBLEM in kinds

    def test_non_object_record(self):
        problems = run_log_problems(["not a dict"])
        assert problems[0][0] == SCHEMA_PROBLEM

    def test_first_record_must_be_run_start(self):
        problems = run_log_problems([span("a", 0.0, 1.0, 0)])
        assert any(
            kind == STRUCTURE_PROBLEM and "run_start" in msg
            for kind, msg in problems
        )

    def test_negative_duration(self):
        events = [{"type": "run_start", "ts": 0.0}, span("a", 0.0, -1.0, 0)]
        assert any("negative" in msg for _, msg in run_log_problems(events))

    def test_unbalanced_nesting_detected(self):
        events = [
            {"type": "run_start", "ts": 0.0},
            span("orphan", 0.1, 0.1, 2),  # no depth-1 span anywhere
            span("root", 0.0, 1.0, 0),
        ]
        assert any(
            "no enclosing depth-1 span" in msg
            for _, msg in run_log_problems(events)
        )

    def test_child_outside_parent_interval_detected(self):
        events = [
            {"type": "run_start", "ts": 0.0},
            span("late", 5.0, 1.0, 1),  # outside root's [0, 1]
            span("root", 0.0, 1.0, 0),
        ]
        assert any("enclosing" in msg for _, msg in run_log_problems(events))

    def test_declared_parent_must_exist(self):
        events = [
            {"type": "run_start", "ts": 0.0},
            span("child", 0.1, 0.2, 1, parent="ghost"),
            span("root", 0.0, 1.0, 0),
        ]
        assert any(
            "declares parent 'ghost'" in msg
            for _, msg in run_log_problems(events)
        )

    def test_backwards_timestamps_detected(self):
        events = [
            {"type": "run_start", "ts": 0.0},
            {"type": "event", "name": "b", "ts": 5.0},
            {"type": "event", "name": "a", "ts": 1.0},
        ]
        assert any(
            "timestamp went backwards" in msg
            for _, msg in run_log_problems(events)
        )

    def test_span_monotonic_key_is_finish_time(self):
        # Inner finishes before outer but is emitted first: legal.
        events = [
            {"type": "run_start", "ts": 0.0},
            span("inner", 0.2, 0.3, 1, "outer"),
            span("outer", 0.0, 1.0, 0),
        ]
        assert run_log_problems(events) == []

    def test_parallel_job_groups_may_interleave(self):
        # Two workers' subtrees interleaved in file order: per-group
        # monotonicity and per-group nesting must both hold.
        events = [
            {"type": "run_start", "ts": 0.0},
            span("compile", 0.5, 0.4, 2, job="b"),
            span("compile", 0.1, 0.3, 2, job="a"),  # earlier, other group
            span("batch.job", 0.5, 0.4, 1, job="b"),
            span("batch.job", 0.1, 0.3, 1, job="a"),
            span("batch", 0.0, 1.0, 0),
        ]
        assert run_log_problems(events) == []


class TestTolerantRead:
    def test_truncated_and_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = [
            json.dumps({"type": "run_start", "ts": 0.0}),
            '{"type": "span", "name": "allocate", "ts": 0.1, "du',  # torn
            "42",  # not an object
            json.dumps({"type": "event", "name": "done", "ts": 1.0}),
        ]
        path.write_text("\n".join(lines) + "\n")
        events, corrupt = read_run_log(path)
        assert corrupt == 2
        assert [e["type"] for e in events] == ["run_start", "event"]

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('\n{"type": "run_start", "ts": 0.0}\n\n')
        events, corrupt = read_run_log(path)
        assert corrupt == 0
        assert len(events) == 1

    def test_undecodable_bytes_do_not_abort(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_bytes(
            json.dumps({"type": "run_start", "ts": 0.0}).encode()
            + b"\n\xff\xfe garbage\n"
        )
        events, corrupt = read_run_log(path)
        assert len(events) == 1
        assert corrupt == 1

    def test_strict_reader_still_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            read_jsonl(path)


class TestConcurrentSink:
    def test_threaded_writers_never_tear_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        n_threads, n_events = 8, 200

        def writer(tid):
            for i in range(n_events):
                sink.emit({"type": "event", "name": f"t{tid}", "ts": float(i),
                           "payload": "x" * 64})

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()

        events, corrupt = read_run_log(path)
        assert corrupt == 0
        assert len(events) == n_threads * n_events
        counts = {}
        for e in events:
            counts[e["name"]] = counts.get(e["name"], 0) + 1
        assert all(v == n_events for v in counts.values())

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"type": "event", "name": "late", "ts": 0.0})
        sink.close()  # idempotent


class TestObsCli:
    def test_report_renders_profile(self, tmp_path, capsys):
        path = write_log(tmp_path, GOOD)
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run profile" in out
        assert "compile" in out
        assert "allocate" in out
        assert "problem(s) detected" not in out

    def test_report_flags_problems(self, tmp_path, capsys):
        path = write_log(
            tmp_path, [span("orphan", 0.1, 0.1, 2), span("root", 0.0, 1.0, 0)]
        )
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run-log problem(s) detected" in out
        assert "OBS001/OBS002" in out

    def test_report_tolerates_corrupt_lines(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"type": "run_start", "ts": 0.0}) + "\n"
            + json.dumps(span("compile", 0.0, 1.0, 0)) + "\n"
            + '{"type": "span", "na'  # torn final line of a killed run
        )
        assert main(["obs", "report", str(path)]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 corrupt line(s)" in captured.err
        assert "compile" in captured.out

    def test_top_ranks_stages(self, tmp_path, capsys):
        path = write_log(tmp_path, GOOD)
        assert main(["obs", "top", str(path), "-n", "2", "--by", "total"]) == 0
        out = capsys.readouterr().out
        assert "top 2 stage(s) by total time" in out
        assert "compile" in out

    def test_diff_names_slowest_stage(self, tmp_path, capsys):
        slow = [
            {"type": "run_start", "ts": 0.0},
            span("allocate", 0.1, 2.4, 1, "compile"),
            span("schedule", 2.5, 0.3, 1, "compile"),
            span("compile", 0.0, 3.0, 0),
        ]
        path_a = write_log(tmp_path, GOOD, "a.jsonl")
        path_b = write_log(tmp_path, slow, "b.jsonl")
        assert main(["obs", "diff", str(path_a), str(path_b)]) == 0
        out = capsys.readouterr().out
        assert "per-stage self-time deltas" in out
        assert "slowest stage in b.jsonl: allocate" in out
        assert "biggest change: allocate" in out
        assert "slower in b.jsonl" in out

    def test_missing_run_log_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="run log not found"):
            main(["obs", "report", str(tmp_path / "absent.jsonl")])

    def test_end_to_end_cli_log_then_report(self, tmp_path, capsys):
        """A --log-json run's output feeds obs report with zero problems."""
        path = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "compile",
                    "--program",
                    "complex",
                    "--n",
                    "16",
                    "-p",
                    "4",
                    "--log-json",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        events, corrupt = read_run_log(path)
        assert corrupt == 0
        assert run_log_problems(events) == []
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "solver convergence traces" in out
        assert "hot spot" in out


def test_obs_use_is_thread_scoped_enough_for_sink_sharing():
    """Many threads emitting through one Telemetry's sink stay intact."""
    t = obs.Telemetry(sinks=[obs.MemorySink()])
    with obs.use(t):
        threads = [
            threading.Thread(
                target=lambda i=i: obs.event("tick", worker=i)
            )
            for i in range(8)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
    names = [e["name"] for e in t.collected_events() if e["type"] == "event"]
    assert names.count("tick") == 8
