"""CLI error-path contract: bad input exits non-zero with a structured
diagnostic on stderr — never a traceback.

Every test here runs the real ``python -m repro`` entry point in a
subprocess so a stray traceback (or a zero exit on garbage input) fails
loudly.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest


def _run(args, env=None):
    full_env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parent.parent / "src")
    full_env["PYTHONPATH"] = repo_src + os.pathsep + full_env.get("PYTHONPATH", "")
    if env:
        full_env.update(env)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=full_env,
        capture_output=True,
        text=True,
    )


def _assert_structured_failure(result, *needles):
    assert result.returncode == 2, (result.returncode, result.stderr)
    assert result.stderr.startswith("error:"), result.stderr
    assert "Traceback" not in result.stderr
    assert "Traceback" not in result.stdout
    for needle in needles:
        assert needle in result.stderr, (needle, result.stderr)


SIM = ["simulate", "--program", "complex", "--n", "8", "-p", "4",
       "--fidelity", "ideal"]


class TestSolveInputErrors:
    def test_truncated_mdg_json(self, tmp_path):
        path = tmp_path / "cut.json"
        path.write_text('{"schema_version": 1, "nodes": [{"name": "a", "proc')
        result = _run(["solve", str(path)])
        _assert_structured_failure(result, "not valid JSON", "line 1")

    def test_missing_mdg_file(self, tmp_path):
        result = _run(["solve", str(tmp_path / "absent.json")])
        _assert_structured_failure(result, "cannot read")

    def test_structurally_invalid_mdg_lists_every_problem(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "schema_version": 1,
            "nodes": [
                {"name": "", "processing": {"kind": "amdahl"}},
                {"name": "a", "processing": {"kind": "warp-drive"}},
            ],
            "edges": [{"source": "a", "target": "ghost"}],
        }))
        result = _run(["solve", str(path)])
        _assert_structured_failure(
            result, "$.nodes[0]", "warp-drive", "unknown node 'ghost'"
        )

    def test_oversized_graph_rejected(self, tmp_path):
        path = tmp_path / "huge.json"
        path.write_text(json.dumps({
            "schema_version": 1,
            "nodes": [
                {"name": f"n{i}", "processing": {"kind": "zero"}}
                for i in range(20_001)
            ],
            "edges": [],
        }))
        result = _run(["solve", str(path)])
        _assert_structured_failure(result, "limit is 20000")


class TestFaultSpecErrors:
    def test_truncated_fault_spec(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text('{"seed": 1, "crashes": [')
        result = _run([*SIM, "--faults", str(path)])
        _assert_structured_failure(result, "not valid JSON")


class TestCacheErrors:
    @pytest.fixture
    def warm_cache(self, tmp_path):
        cache = tmp_path / "cache"
        result = _run([*SIM, "--cache-dir", str(cache)])
        assert result.returncode == 0, result.stderr
        return cache

    def test_corrupted_artifact_strict(self, warm_cache):
        for artifact in (warm_cache / "schedule").glob("*.json"):
            raw = bytearray(artifact.read_bytes())
            raw[len(raw) // 2] ^= 0x01
            artifact.write_bytes(bytes(raw))
        result = _run(
            [*SIM, "--cache-dir", str(warm_cache), "--resume", "--strict"]
        )
        _assert_structured_failure(result, "checksum mismatch")

    def test_stale_artifact_strict(self, warm_cache):
        from repro.store.artifact import canonical_json

        for artifact in (warm_cache / "allocation").glob("*.json"):
            envelope = json.loads(artifact.read_text())
            envelope["schema_version"] = 0
            artifact.write_text(canonical_json(envelope))
        result = _run(
            [*SIM, "--cache-dir", str(warm_cache), "--resume", "--strict"]
        )
        _assert_structured_failure(result, "schema version")

    def test_corruption_recovered_without_strict(self, warm_cache):
        for artifact in (warm_cache / "schedule").glob("*.json"):
            artifact.write_text("garbage")
        result = _run([*SIM, "--cache-dir", str(warm_cache), "--resume"])
        assert result.returncode == 0, result.stderr
        assert (warm_cache / "quarantine").is_dir()

    def test_resume_requires_cache_dir(self):
        result = _run([*SIM, "--resume"])
        assert result.returncode != 0
        assert "Traceback" not in result.stderr
        assert "--cache-dir" in result.stderr
