"""Crash-safety tests: run_resumable, quarantine, and kill-and-resume.

The subprocess tests drive the real CLI — including a SIGKILL delivered
after the allocation stage's artifact lands — and assert the resumed run
reuses the cached allocation and reproduces the uninterrupted run's
schedule bit for bit.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.errors import ArtifactCorruptError, SchedulingError
from repro.graph.generators import paper_example_mdg
from repro.machine.parameters import MachineParameters
from repro.costs.transfer import TransferCostParameters
from repro.pipeline import run_resumable
from repro.store.artifact import canonical_json, content_hash


@pytest.fixture
def machine():
    return MachineParameters(
        "m4",
        4,
        TransferCostParameters(
            t_ss=1.0e-4, t_ps=5.0e-9, t_sr=8.0e-5, t_pr=4.0e-9, t_n=1.0e-9
        ),
    )


def _artifact_path(cache_dir, kind, key):
    return Path(cache_dir) / kind / f"{key}.json"


class TestRunResumable:
    def test_uncached_run_works(self, machine):
        run = run_resumable(paper_example_mdg(), machine, cache_dir=None)
        assert run.compilation.schedule.makespan > 0
        assert run.simulation is not None
        assert run.cache_dir is None
        assert run.resumed_stages == []

    def test_second_run_hits_every_stage(self, machine, tmp_path):
        first = run_resumable(paper_example_mdg(), machine, cache_dir=tmp_path)
        assert first.resumed_stages == []
        second = run_resumable(paper_example_mdg(), machine, cache_dir=tmp_path)
        assert set(second.resumed_stages) == {
            "mdg", "allocation", "schedule", "simulation"
        }
        assert (
            second.compilation.schedule.makespan
            == first.compilation.schedule.makespan
        )
        assert second.simulation.makespan == first.simulation.makespan
        assert second.simulation.info.get("resumed_from_cache") is True

    def test_resume_false_recomputes_but_rewrites(self, machine, tmp_path):
        run_resumable(paper_example_mdg(), machine, cache_dir=tmp_path)
        again = run_resumable(
            paper_example_mdg(), machine, cache_dir=tmp_path, resume=False
        )
        assert again.resumed_stages == []

    def test_different_machine_misses(self, machine, tmp_path):
        run_resumable(paper_example_mdg(), machine, cache_dir=tmp_path)
        other = run_resumable(
            paper_example_mdg(),
            machine.with_processors(8),
            cache_dir=tmp_path,
        )
        assert other.resumed_stages == []

    def test_flipped_byte_quarantines_and_recomputes(self, machine, tmp_path):
        first = run_resumable(paper_example_mdg(), machine, cache_dir=tmp_path)
        path = _artifact_path(tmp_path, "allocation", first.keys["allocation"])
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))

        telemetry = obs.configure()
        try:
            second = run_resumable(
                paper_example_mdg(), machine, cache_dir=tmp_path
            )
            counters = {
                c.name: c.value for c in telemetry.metrics.counters.values()
            }
            events = [
                e for e in telemetry.collected_events() if e.get("type") == "event"
            ]
        finally:
            obs.shutdown()

        assert second.stage_sources["allocation"] == "computed"
        assert second.stage_sources["schedule"] == "cache"
        assert counters.get("store.corrupt") == 1
        corrupt = [e for e in events if e["name"] == "store.corrupt"]
        assert corrupt and corrupt[0]["kind"] == "allocation"
        assert list((Path(tmp_path) / "quarantine").iterdir())
        # Result identical despite the corruption.
        assert (
            second.compilation.schedule.makespan
            == first.compilation.schedule.makespan
        )

    def test_strict_raises_on_corruption(self, machine, tmp_path):
        first = run_resumable(paper_example_mdg(), machine, cache_dir=tmp_path)
        path = _artifact_path(tmp_path, "allocation", first.keys["allocation"])
        path.write_text(path.read_text()[:-15])
        with pytest.raises(ArtifactCorruptError):
            run_resumable(
                paper_example_mdg(), machine, cache_dir=tmp_path, strict=True
            )

    def test_resumed_schedule_is_recertified(self, machine, tmp_path):
        """A tampered-but-checksum-valid schedule artifact is caught by the
        post-condition re-validation, not trusted because its bytes add up."""
        first = run_resumable(paper_example_mdg(), machine, cache_dir=tmp_path)
        path = _artifact_path(tmp_path, "schedule", first.keys["schedule"])
        envelope = json.loads(path.read_text())
        # Sabotage: put every node on the same processor at the same time,
        # then recompute the checksum so the artifact reads as valid.
        for entry in envelope["payload"]["entries"]:
            entry["start"] = 0.0
            entry["finish"] = 1.0
            entry["processors"] = [0]
        envelope["checksum"] = content_hash(envelope["payload"])
        path.write_text(canonical_json(envelope))

        with pytest.raises(SchedulingError, match="post-conditions"):
            run_resumable(
                paper_example_mdg(), machine, cache_dir=tmp_path, strict=True
            )

        # Non-strict: same detection, but as a warning event.
        telemetry = obs.configure()
        try:
            run_resumable(paper_example_mdg(), machine, cache_dir=tmp_path)
            events = [
                e
                for e in telemetry.collected_events()
                if e.get("name") == "pipeline.postcondition"
            ]
        finally:
            obs.shutdown()
        assert events and events[0]["ok"] is False
        assert "resume" in events[0]["source"]

    def test_simulation_trace_roundtrips_when_recorded(self, machine, tmp_path):
        first = run_resumable(
            paper_example_mdg(), machine, cache_dir=tmp_path, record_trace=True
        )
        assert len(first.simulation.trace) > 0
        second = run_resumable(
            paper_example_mdg(), machine, cache_dir=tmp_path, record_trace=True
        )
        assert second.stage_sources["simulation"] == "cache"
        assert len(second.simulation.trace) == len(first.simulation.trace)
        assert (
            second.simulation.node_finish_times()
            == first.simulation.node_finish_times()
        )


CLI_ARGS = [
    "simulate",
    "--program", "complex",
    "--n", "8",
    "-p", "4",
    "--fidelity", "ideal",
]


def _cli(extra, env=None, background=False):
    cmd = [sys.executable, "-m", "repro", *CLI_ARGS, *extra]
    full_env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parent.parent / "src")
    full_env["PYTHONPATH"] = repo_src + os.pathsep + full_env.get("PYTHONPATH", "")
    if env:
        full_env.update(env)
    if background:
        return subprocess.Popen(
            cmd, env=full_env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
    return subprocess.run(cmd, env=full_env, capture_output=True, text=True)


def _wait_for_artifact(cache_dir, kind, timeout=120.0):
    deadline = time.monotonic() + timeout
    stage_dir = Path(cache_dir) / kind
    while time.monotonic() < deadline:
        if stage_dir.is_dir() and list(stage_dir.glob("*.json")):
            return list(stage_dir.glob("*.json"))[0]
        time.sleep(0.05)
    raise AssertionError(f"no {kind} artifact appeared within {timeout}s")


class TestKillAndResume:
    def test_sigkill_after_allocation_then_resume(self, tmp_path):
        """The acceptance scenario: kill after the allocation stage, resume,
        observe the allocation cache hit, and get a bit-identical schedule."""
        interrupted = tmp_path / "interrupted"
        uninterrupted = tmp_path / "uninterrupted"

        # Start a run that stalls right after the allocation artifact is
        # written, and SIGKILL it there.
        proc = _cli(
            ["--cache-dir", str(interrupted)],
            env={
                "REPRO_STORE_STALL_AFTER": "allocation",
                "REPRO_STORE_STALL_SECONDS": "120",
            },
            background=True,
        )
        try:
            _wait_for_artifact(interrupted, "allocation")
        finally:
            proc.kill()  # SIGKILL: no cleanup, no atexit, nothing.
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
        assert not (interrupted / "schedule").exists()

        # Resume: must exit 0, reuse the allocation artifact, and log the
        # cache hit through obs.
        log = tmp_path / "resume.jsonl"
        result = _cli(
            [
                "--cache-dir", str(interrupted),
                "--resume",
                "--log-json", str(log),
            ]
        )
        assert result.returncode == 0, result.stderr
        assert "resumed from cache" in result.stdout
        hits = [
            json.loads(line)
            for line in log.read_text().splitlines()
            if '"store.hit"' in line
        ]
        assert any(h.get("kind") == "allocation" for h in hits)

        # Control: one uninterrupted run in a fresh cache.
        control = _cli(["--cache-dir", str(uninterrupted)])
        assert control.returncode == 0, control.stderr

        # The schedule artifacts must be bit-identical.
        resumed_schedule = _wait_for_artifact(interrupted, "schedule", timeout=5)
        control_schedule = _wait_for_artifact(uninterrupted, "schedule", timeout=5)
        assert resumed_schedule.name == control_schedule.name  # same cache key
        assert resumed_schedule.read_bytes() == control_schedule.read_bytes()

        # And the printed makespans must agree exactly.
        measured = [
            line
            for line in (result.stdout + control.stdout).splitlines()
            if line.startswith("measured")
        ]
        assert len(measured) == 2
        assert measured[0] == measured[1]

    def test_resume_with_stale_cache_strict_exits_nonzero(self, tmp_path):
        cache = tmp_path / "cache"
        first = _cli(["--cache-dir", str(cache)])
        assert first.returncode == 0, first.stderr
        # Age every allocation artifact to a schema version this build
        # does not read (payload checksum still valid -> *stale*, not
        # corrupt).
        for artifact in (cache / "allocation").glob("*.json"):
            envelope = json.loads(artifact.read_text())
            envelope["schema_version"] = 0
            artifact.write_text(canonical_json(envelope))

        strict = _cli(["--cache-dir", str(cache), "--resume", "--strict"])
        assert strict.returncode == 2
        assert "error:" in strict.stderr
        assert "schema version" in strict.stderr
        assert "Traceback" not in strict.stderr

        # Non-strict: quarantined, recomputed, exit 0.
        relaxed = _cli(["--cache-dir", str(cache), "--resume"])
        assert relaxed.returncode == 0, relaxed.stderr
        assert (cache / "quarantine").is_dir()
