"""Unit tests for the fat-tree topology model."""

import itertools

import pytest

from repro.errors import ValidationError
from repro.machine.topology import (
    FatTreeTopology,
    cm5_fat_tree,
    derive_uniform_network_delay,
    parameters_with_topology,
)
from repro.costs.transfer import TransferCostParameters


class TestFatTreeTopology:
    def test_cm5_shape(self):
        tree = cm5_fat_tree()
        assert tree.arity == 4
        assert tree.levels == 3
        assert tree.processors == 64

    def test_hop_count_same_processor(self):
        tree = FatTreeTopology(arity=2, levels=3)
        assert tree.hop_count(5, 5) == 0

    def test_hop_count_siblings(self):
        tree = FatTreeTopology(arity=4, levels=2)
        # 0 and 3 share the level-1 switch.
        assert tree.hop_count(0, 3) == 2
        # 0 and 4 are in different level-1 subtrees: climb to the root.
        assert tree.hop_count(0, 4) == 4

    def test_hop_count_symmetric(self):
        tree = FatTreeTopology(arity=3, levels=2)
        for a, b in itertools.combinations(range(tree.processors), 2):
            assert tree.hop_count(a, b) == tree.hop_count(b, a)

    def test_max_hops(self):
        assert FatTreeTopology(arity=4, levels=3).max_hops() == 6

    def test_average_hops_matches_enumeration(self):
        tree = FatTreeTopology(arity=2, levels=3)
        n = tree.processors
        pairs = [
            tree.hop_count(a, b)
            for a in range(n)
            for b in range(n)
            if a != b
        ]
        assert tree.average_hops() == pytest.approx(sum(pairs) / len(pairs))

    def test_average_hops_below_max(self):
        tree = cm5_fat_tree()
        assert 2.0 < tree.average_hops() < tree.max_hops()

    def test_root_crossing_pairs(self):
        tree = FatTreeTopology(arity=2, levels=2)  # n = 4, subtrees {0,1},{2,3}
        assert tree.root_crossing_pairs() == 4  # 2 * 2 cross pairs

    def test_out_of_range_rejected(self):
        tree = FatTreeTopology(arity=2, levels=2)
        with pytest.raises(ValidationError):
            tree.hop_count(0, 4)

    def test_validation(self):
        with pytest.raises(ValidationError):
            FatTreeTopology(arity=1, levels=2)
        with pytest.raises(ValidationError):
            FatTreeTopology(arity=2, levels=0)
        with pytest.raises(ValidationError):
            FatTreeTopology(arity=2, levels=2, hop_delay=-1.0)


class TestUniformDelayDerivation:
    def test_zero_hop_delay(self):
        mean, spread = derive_uniform_network_delay(cm5_fat_tree(0.0))
        assert mean == 0.0
        assert spread == 0.0

    def test_mean_and_spread(self):
        tree = FatTreeTopology(arity=2, levels=3, hop_delay=1e-9)
        mean, spread = derive_uniform_network_delay(tree)
        assert mean == pytest.approx(tree.average_hops() * 1e-9)
        assert spread > 0.0

    def test_pair_delay(self):
        tree = FatTreeTopology(arity=2, levels=2, hop_delay=2e-9)
        assert tree.pair_delay(0, 1) == pytest.approx(4e-9)

    def test_parameters_with_topology(self):
        base = TransferCostParameters(1e-4, 1e-9, 1e-4, 1e-9, 0.0)
        tree = FatTreeTopology(arity=4, levels=3, hop_delay=1e-9)
        derived = parameters_with_topology(base, tree)
        assert derived.t_n == pytest.approx(tree.average_hops() * 1e-9)
        assert derived.t_ss == base.t_ss

    def test_cm5_uniformity_assumption(self):
        """Paper: 'network costs are the same for all processor pairs.
        This assumption is valid for most of the current machines.' On the
        CM-5 fat tree the pairwise spread is modest (< 1.6x the mean)."""
        tree = cm5_fat_tree(hop_delay=1e-9)
        mean, spread = derive_uniform_network_delay(tree)
        assert spread < 1.6
