"""Unit tests for placement-aware locality accounting."""

import pytest

from repro.errors import DistributionError
from repro.programs import pipeline_program, reduction_tree_program
from repro.runtime.executor import ValueExecutor
from repro.runtime.verify import verify_against_reference


class TestLocalityAccounting:
    def test_aligned_placement_all_local(self):
        """Producer and consumer on the same processors with matching
        rank order: every 1D-aligned message stays on-processor."""
        bundle = pipeline_program(stages=1, n=8)
        nodes = bundle.app.computational_nodes()
        allocation = {name: 2 for name in nodes}
        placement = {name: (0, 1) for name in nodes}
        report = ValueExecutor(bundle.app).run(allocation, placement)
        verify_against_reference(bundle.app, report)
        for stat in report.transfers:
            assert stat.local_bytes == stat.bytes_moved, stat
        assert report.locality_fraction() == 1.0
        assert report.total_wire_bytes() == 0

    def test_disjoint_placement_nothing_local(self):
        bundle = pipeline_program(stages=1, n=8)
        nodes = bundle.app.computational_nodes()
        allocation = {name: 2 for name in nodes}
        placement = {
            name: (2 * k, 2 * k + 1) for k, name in enumerate(nodes)
        }
        report = ValueExecutor(bundle.app).run(allocation, placement)
        assert all(s.local_bytes == 0 for s in report.transfers)
        assert report.locality_fraction() == 0.0
        assert report.total_wire_bytes() == report.total_bytes_moved()

    def test_partial_overlap(self):
        bundle = pipeline_program(stages=1, n=8)
        nodes = bundle.app.computational_nodes()
        allocation = {name: 2 for name in nodes}
        placement = {name: (0, 1) for name in nodes}
        placement[nodes[0]] = (0, 5)  # rank 1 moved off
        report = ValueExecutor(bundle.app).run(allocation, placement)
        assert 0.0 < report.locality_fraction() < 1.0

    def test_no_placement_means_zero_locals(self):
        bundle = pipeline_program(stages=1, n=8)
        report = ValueExecutor(bundle.app).run(
            {name: 2 for name in bundle.app.computational_nodes()}
        )
        assert all(s.local_messages == 0 for s in report.transfers)
        assert report.total_wire_bytes() == report.total_bytes_moved()

    def test_wrong_placement_width_rejected(self):
        bundle = pipeline_program(stages=1, n=8)
        nodes = bundle.app.computational_nodes()
        placement = {name: (0,) for name in nodes}  # groups are 2-wide
        with pytest.raises(DistributionError, match="exactly"):
            ValueExecutor(bundle.app).run(
                {name: 2 for name in nodes}, placement
            )

    def test_schedule_placement_end_to_end(self, cm5_16):
        """Feed the PSA's actual processor assignments into the executor:
        the schedule's processor reuse shows up as locality."""
        from repro.allocation.solver import ConvexSolverOptions, solve_allocation
        from repro.scheduling.psa import prioritized_schedule

        bundle = reduction_tree_program(levels=2, n=16)
        mdg = bundle.mdg.normalized()
        allocation = solve_allocation(
            mdg, cm5_16, ConvexSolverOptions(multistart_targets=(4.0,))
        )
        schedule = prioritized_schedule(mdg, allocation.processors, cm5_16)
        groups = {}
        placement = {}
        for name in bundle.app.computational_nodes():
            entry = schedule.entry(name)
            groups[name] = entry.width
            placement[name] = entry.processors
        report = ValueExecutor(bundle.app).run(groups, placement)
        verify_against_reference(bundle.app, report)
        # The PSA reuses freed processors, so some traffic is local.
        assert 0.0 <= report.locality_fraction() <= 1.0
        assert report.total_wire_bytes() + sum(
            s.local_bytes for s in report.transfers
        ) == report.total_bytes_moved()
