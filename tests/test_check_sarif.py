"""SARIF 2.1.0 output shape, rule registry integrity, docs sync."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check import (
    Analyzer,
    CheckContext,
    Finding,
    Pass,
    Rule,
    SARIF_SCHEMA,
    Severity,
    all_rules,
    check_document,
    render_sarif,
    rules_markdown,
    sarif_dict,
)
from repro.errors import CheckError

DOCS = Path(__file__).resolve().parent.parent / "docs"

BAD_DOC = {
    "schema_version": 1,
    "name": "bad",
    "nodes": [
        {"name": "a", "processing": {"kind": "amdahl", "alpha": 2.0, "tau": 1.0}},
        {"name": "b", "processing": {"kind": "zero"}},
    ],
    "edges": [
        {"source": "a", "target": "b", "transfers": []},
        {"source": "b", "target": "a", "transfers": []},
    ],
}


@pytest.fixture
def report():
    return check_document(dict(BAD_DOC), artifact="bad.json")


class TestSarifShape:
    def test_log_skeleton(self, report):
        log = sarif_dict(report, all_rules())
        assert log["version"] == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        assert isinstance(log["runs"], list) and len(log["runs"]) == 1

    def test_driver_rules(self, report):
        driver = sarif_dict(report, all_rules())["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-check"
        assert driver["rules"], "rules must be embedded for GitHub annotation"
        for rule in driver["rules"]:
            assert rule["id"]
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "note", "warning", "error",
            )

    def test_results_reference_rules(self, report):
        log = sarif_dict(report, all_rules())
        run = log["runs"][0]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert run["results"], "the bad document must produce findings"
        for result in run["results"]:
            assert result["ruleId"] in ids
            assert ids[result["ruleIndex"]] == result["ruleId"]
            assert result["level"] in ("note", "warning", "error")
            assert result["message"]["text"]
            location = result["locations"][0]
            assert location["physicalLocation"]["artifactLocation"]["uri"]
            region = location["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert location["logicalLocations"][0]["fullyQualifiedName"].startswith("$")

    def test_render_is_valid_json(self, report):
        parsed = json.loads(render_sarif(report, all_rules()))
        assert parsed["version"] == "2.1.0"

    def test_memory_artifact_gets_placeholder_uri(self):
        report = check_document(dict(BAD_DOC))  # artifact defaults to <memory>
        log = sarif_dict(report, all_rules())
        for result in log["runs"][0]["results"]:
            uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            assert "<" not in uri and uri


class TestRuleRegistry:
    def test_rule_ids_are_unique_and_well_formed(self):
        rules = all_rules()
        ids = [r.rule_id for r in rules]
        assert len(ids) == len(set(ids))
        for rule_id in ids:
            prefix = rule_id.rstrip("0123456789")
            assert prefix in (
                "MDG", "COST", "SCHED", "IR", "COMM", "BATCH", "OBS", "RES"
            )
            assert rule_id[len(prefix):].isdigit()

    def test_every_family_contributes_rules(self):
        analyzer = Analyzer()
        assert analyzer.families() == [
            "batch", "comm", "cost", "graph", "ir", "obs", "resilience",
            "schedule"
        ]
        prefixes = {r.rule_id.rstrip("0123456789") for r in analyzer.rules()}
        assert prefixes == {
            "MDG", "COST", "SCHED", "IR", "COMM", "BATCH", "OBS", "RES"
        }

    def test_duplicate_rule_definition_rejected(self):
        clash = Rule("MDG001", "different", Severity.NOTE, "clash")

        class Clashing(Pass):
            name = "clash"
            family = "graph"
            rules = (clash,)

            def run(self, ctx: CheckContext):
                return ()

        from repro.check.registry import default_passes

        with pytest.raises(CheckError, match="MDG001"):
            Analyzer(default_passes() + [Clashing()])

    def test_bad_rule_id_rejected(self):
        with pytest.raises(CheckError):
            Rule("NONUMBER", "t", Severity.NOTE, "d")


class TestDocs:
    def test_rules_markdown_lists_every_rule(self):
        text = rules_markdown()
        for rule in all_rules():
            assert rule.rule_id in text

    def test_docs_rules_md_in_sync(self):
        # docs/rules.md is generated; regenerate with:
        #   PYTHONPATH=src python -m repro check --list-rules \
        #     --format markdown > docs/rules.md
        on_disk = (DOCS / "rules.md").read_text()
        assert on_disk == rules_markdown()

    def test_userguide_documents_every_rule(self):
        guide = (DOCS / "userguide.md").read_text()
        for rule in all_rules():
            assert rule.rule_id in guide


class TestObsIntegration:
    def test_findings_counted(self):
        from repro import obs

        telemetry = obs.configure()
        try:
            report = check_document(dict(BAD_DOC), artifact="bad.json")
            counters = telemetry.metrics.snapshot()["counters"]
            assert counters["check.findings"] >= len(report.findings)
            assert "check.findings.COST003.error" in counters
        finally:
            obs.shutdown()
