"""MPMDProgram.validate() edge cases and the canonical JSON serialization."""

from __future__ import annotations

import json

import pytest

from repro.codegen.program import ComputeOp, MPMDProgram, RecvOp, SendOp
from repro.codegen.serialization import (
    PROGRAM_DOC_KIND,
    PROGRAM_SCHEMA_VERSION,
    is_program_doc,
    load_program,
    program_from_dict,
    program_to_dict,
    save_program,
)
from repro.errors import CodegenError
from repro.graph.generators import paper_example_mdg
from repro.pipeline import compile_mdg


def two_proc_program() -> MPMDProgram:
    """Minimal valid program: a -> b over a zero-byte sync message."""
    return MPMDProgram(
        total_processors=2,
        streams={
            0: [
                ComputeOp(node="a", cost=1.0),
                SendOp(source="a", target="b", startup_cost=0.1, byte_cost=0.0),
            ],
            1: [
                RecvOp(source="a", target="b", startup_cost=0.1, byte_cost=0.0),
                ComputeOp(node="b", cost=2.0),
            ],
        },
        senders={("a", "b"): (0,)},
        receivers={("a", "b"): (1,)},
    )


class TestValidate:
    def test_valid_program_passes(self):
        two_proc_program().validate()

    def test_empty_streams_are_valid(self):
        # A program with no instructions at all has nothing to mismatch.
        MPMDProgram(total_processors=4).validate()
        MPMDProgram(total_processors=4, streams={0: [], 3: []}).validate()

    def test_zero_byte_sync_messages_are_valid(self):
        program = two_proc_program()
        assert program.streams[0][1].bytes_sent == 0.0
        program.validate()

    def test_stream_key_out_of_range(self):
        program = two_proc_program()
        program.streams[9] = []
        with pytest.raises(CodegenError, match=r"\[9\] out of range"):
            program.validate()

    def test_negative_stream_key_rejected(self):
        program = two_proc_program()
        program.streams[-1] = []
        with pytest.raises(CodegenError, match="out of range"):
            program.validate()

    def test_sender_registry_out_of_range(self):
        program = two_proc_program()
        program.senders[("a", "b")] = (0, 7)
        with pytest.raises(CodegenError, match="sender registry"):
            program.validate()

    def test_receiver_registry_out_of_range(self):
        program = two_proc_program()
        program.receivers[("a", "b")] = (-2,)
        with pytest.raises(CodegenError, match="receiver registry"):
            program.validate()

    def test_send_without_recv_rejected(self):
        program = two_proc_program()
        program.streams[1] = [op for op in program.streams[1]
                              if not isinstance(op, RecvOp)]
        with pytest.raises(CodegenError, match="unmatched transfers"):
            program.validate()

    def test_recv_without_send_rejected(self):
        program = two_proc_program()
        program.streams[0] = [op for op in program.streams[0]
                              if not isinstance(op, SendOp)]
        with pytest.raises(CodegenError, match="unmatched transfers"):
            program.validate()

    def test_missing_registry_rejected(self):
        program = two_proc_program()
        del program.senders[("a", "b")]
        with pytest.raises(CodegenError, match="registry"):
            program.validate()

    def test_stream_accessor_range(self):
        program = two_proc_program()
        assert program.stream(1)
        with pytest.raises(CodegenError, match="out of range"):
            program.stream(2)


class TestSerialization:
    def test_round_trip_minimal(self):
        program = two_proc_program()
        doc = program_to_dict(program)
        assert doc["kind"] == PROGRAM_DOC_KIND
        assert doc["schema_version"] == PROGRAM_SCHEMA_VERSION
        rebuilt = program_from_dict(doc)
        assert program_to_dict(rebuilt) == doc
        assert rebuilt.streams[0] == program.streams[0]
        assert rebuilt.streams[1] == program.streams[1]
        assert rebuilt.senders == program.senders
        assert rebuilt.receivers == program.receivers

    def test_round_trip_compiled_program(self, cm5_16):
        compilation = compile_mdg(paper_example_mdg(), cm5_16)
        doc = program_to_dict(compilation.program)
        rebuilt = program_from_dict(doc)
        assert program_to_dict(rebuilt) == doc
        assert rebuilt.n_instructions == compilation.program.n_instructions

    def test_save_and_load(self, tmp_path):
        program = two_proc_program()
        path = save_program(program, tmp_path / "prog.json")
        assert is_program_doc(json.loads(path.read_text()))
        rebuilt = load_program(path)
        assert program_to_dict(rebuilt) == program_to_dict(program)

    def test_is_program_doc(self):
        assert is_program_doc(program_to_dict(two_proc_program()))
        assert not is_program_doc({"kind": "other"})
        assert not is_program_doc({"nodes": [], "edges": []})
        assert not is_program_doc(None)
        assert not is_program_doc([])

    def test_wrong_kind_rejected(self):
        doc = program_to_dict(two_proc_program())
        doc["kind"] = "mdg"
        with pytest.raises(CodegenError, match="not a program document"):
            program_from_dict(doc)

    def test_wrong_schema_version_rejected(self):
        doc = program_to_dict(two_proc_program())
        doc["schema_version"] = 999
        with pytest.raises(CodegenError, match="schema version"):
            program_from_dict(doc)

    def test_unknown_op_kind_rejected(self):
        doc = program_to_dict(two_proc_program())
        doc["streams"]["0"].append({"op": "barrier"})
        with pytest.raises(CodegenError, match="unknown op kind"):
            program_from_dict(doc)

    def test_out_of_range_stream_rejected(self):
        doc = program_to_dict(two_proc_program())
        doc["streams"]["5"] = []
        with pytest.raises(CodegenError, match="out of range"):
            program_from_dict(doc)

    def test_unreadable_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(CodegenError, match="cannot read"):
            load_program(path)
        with pytest.raises(CodegenError, match="cannot read"):
            load_program(tmp_path / "missing.json")


class TestSPMDDivergenceError:
    def test_divergence_error_names_processor_and_instruction(self):
        # Forge a divergent pair of streams through the private check by
        # calling the generator on a hand-broken program path: simplest is
        # to monkeypatch generate_mpmd_program's output via the public
        # generate_spmd_program contract.
        import repro.codegen.spmd as spmd_mod

        program = two_proc_program()
        program.info["style"] = "SPMD"

        real_gen = spmd_mod.generate_mpmd_program
        real_sched = spmd_mod.spmd_schedule
        try:
            spmd_mod.spmd_schedule = lambda mdg, machine: None
            spmd_mod.generate_mpmd_program = lambda schedule, machine: program
            with pytest.raises(CodegenError) as exc_info:
                spmd_mod.generate_spmd_program(object(), object())
        finally:
            spmd_mod.generate_mpmd_program = real_gen
            spmd_mod.spmd_schedule = real_sched
        message = str(exc_info.value)
        assert "processor 1" in message
        assert "processor 0" in message
        assert "instruction 0" in message
