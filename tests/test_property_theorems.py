"""Property tests of the Section 5 theorems on random MDGs.

These are the strongest checks in the suite: for arbitrary random graphs
and machine configurations, the PSA's realized finish time must respect
the Theorem 1 and Theorem 3 bounds, and the convex optimum must
lower-bound everything the exhaustive oracle can enumerate.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocation.exhaustive import exhaustive_best_allocation
from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.costs.node_weights import MDGCostModel
from repro.costs.transfer import TransferCostParameters
from repro.graph.generators import layered_random_mdg, random_mdg
from repro.machine.parameters import MachineParameters
from repro.scheduling.bounds import verify_theorem1, verify_theorem3
from repro.scheduling.psa import PSAOptions, prioritized_schedule

FAST_SOLVER = ConvexSolverOptions(multistart_targets=(4.0,))

machines = st.builds(
    lambda p, scale: MachineParameters(
        f"m{p}",
        p,
        TransferCostParameters(
            t_ss=1e-4 * scale, t_ps=5e-9 * scale, t_sr=8e-5 * scale,
            t_pr=4e-9 * scale, t_n=1e-9 * scale,
        ),
    ),
    st.sampled_from([4, 8, 16, 32]),
    st.sampled_from([0.0, 1.0, 10.0]),
)

graphs = st.builds(
    lambda seed, layers, width: layered_random_mdg(
        layers, width, seed=seed
    ).normalized(),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=1, max_value=3),
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graphs, machines)
def test_theorem1_and_3_hold_on_random_graphs(mdg, machine):
    allocation = solve_allocation(mdg, machine, FAST_SOLVER)
    schedule = prioritized_schedule(mdg, allocation.processors, machine)
    r1 = verify_theorem1(schedule, machine)
    r3 = verify_theorem3(schedule, machine, allocation.phi)
    assert r1.holds, f"Theorem 1 violated: {r1}"
    assert r3.holds, f"Theorem 3 violated: {r3}"


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graphs, machines)
def test_psa_respects_its_allocation_lower_bound(mdg, machine):
    """T_psa >= max(A_PB, C_PB): no schedule can beat its own bound."""
    allocation = solve_allocation(mdg, machine, FAST_SOLVER)
    schedule = prioritized_schedule(mdg, allocation.processors, machine)
    cm = MDGCostModel(mdg, machine.transfer_model())
    lower = cm.makespan_lower_bound(
        schedule.info["allocation"], machine.processors
    )
    assert schedule.makespan >= lower * (1 - 1e-9)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=1000),
    st.sampled_from([4, 8]),
)
def test_phi_lower_bounds_exhaustive(seed, p):
    """The continuous optimum can never exceed any integer allocation's
    max(A, C) — global optimality evidence for the convex solver."""
    mdg = random_mdg(4, seed=seed, edge_probability=0.5).normalized()
    machine = MachineParameters(
        "m", p, TransferCostParameters(1e-4, 5e-9, 8e-5, 4e-9, 0.0)
    )
    allocation = solve_allocation(mdg, machine, FAST_SOLVER)
    oracle = exhaustive_best_allocation(mdg, machine)
    assert allocation.phi <= oracle.phi * (1 + 1e-4)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graphs, machines)
def test_schedule_invariants_on_random_graphs(mdg, machine):
    """Validation (precedence, booking, widths, durations) never fails on
    solver+PSA output, for any random graph/machine drawn."""
    allocation = solve_allocation(mdg, machine, FAST_SOLVER)
    schedule = prioritized_schedule(mdg, allocation.processors, machine)
    schedule.validate(schedule.info["weights"])
    assert schedule.useful_work_area() <= (
        machine.processors * schedule.makespan * (1 + 1e-9)
    )
