"""Unit tests for MPMD program listings and summaries."""

import pytest

from repro.codegen.pretty import format_processor_stream, format_program, program_summary
from repro.machine.presets import cm5
from repro.pipeline import compile_mdg, compile_spmd
from repro.programs import complex_matmul_program


@pytest.fixture(scope="module")
def mpmd_program():
    return compile_mdg(complex_matmul_program(16).mdg, cm5(8)).program


@pytest.fixture(scope="module")
def spmd_program():
    return compile_spmd(complex_matmul_program(16).mdg, cm5(8)).program


class TestFormatting:
    def test_listing_contains_all_op_kinds(self, mpmd_program):
        text = format_program(mpmd_program)
        assert "EXEC" in text
        assert "SEND" in text
        assert "RECV" in text

    def test_processor_stream_indexed(self, mpmd_program):
        text = format_processor_stream(mpmd_program, 0)
        assert text.startswith("processor 0:")
        assert "[  0]" in text

    def test_spmd_collapses_to_one_block(self, spmd_program):
        text = format_program(spmd_program)
        assert "processors 0..7 (identical)" in text
        # Exactly one instruction block.
        assert text.count("instructions") == 1

    def test_mpmd_streams_differ(self, mpmd_program):
        text = format_program(mpmd_program)
        # More than one block: the MPMD claim made visible.
        assert text.count("instructions") > 1

    def test_max_processors_limits_output(self, mpmd_program):
        text = format_program(mpmd_program, max_processors=1)
        assert "processor 0:" in text
        assert "processor 7" not in text

    def test_costs_in_microseconds(self, mpmd_program):
        assert "us)" in format_program(mpmd_program)


class TestSummary:
    def test_counts_consistent(self, mpmd_program):
        stats = program_summary(mpmd_program)
        assert stats["instructions"] == mpmd_program.n_instructions
        assert (
            stats["computes"] + stats["sends"] + stats["receives"]
            == stats["instructions"]
        )

    def test_compute_seconds_positive(self, mpmd_program):
        stats = program_summary(mpmd_program)
        assert stats["compute_seconds"] > 0
        assert stats["message_seconds"] > 0

    def test_bytes_sent_match_transfers(self, mpmd_program):
        """Total bytes on the wire = sum over edges of L (each array is
        sent exactly once in aggregate across the sender group)."""
        stats = program_summary(mpmd_program)
        mdg = complex_matmul_program(16).mdg
        expected = sum(t.length_bytes for e in mdg.edges() for t in e.transfers)
        assert stats["bytes_sent"] == pytest.approx(expected)
