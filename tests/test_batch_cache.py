"""Structural solve cache, warm starts, poisoning, and term memoization."""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro import obs
from repro.allocation.formulation import ConvexAllocationProblem
from repro.batch import (
    BatchCompiler,
    BatchJob,
    layout_key,
    structural_key,
)
from repro.graph.builders import MDGBuilder, amdahl
from repro.graph.generators import layered_random_mdg
from repro.machine.presets import cm5


def graph(seed=11, layers=3, width=2):
    return layered_random_mdg(layers, width, seed=seed).normalized()


def job_for(mdg, job_id, processors=8):
    return BatchJob.from_mdg(mdg, job_id=job_id, machine_params=cm5(processors))


# ----- structural identity --------------------------------------------------


def test_structural_key_is_deterministic(machine8):
    mdg = graph()
    k1 = structural_key(ConvexAllocationProblem(mdg, machine8))
    k2 = structural_key(ConvexAllocationProblem(mdg, machine8))
    assert k1 == k2


def _chain(names, taus):
    builder = MDGBuilder(f"chain-{names[0]}")
    previous = None
    for name, tau in zip(names, taus):
        builder.node(
            name, amdahl(0.1, tau), after=[previous] if previous else []
        )
        previous = name
    return builder.build(normalize=True)


def test_structural_key_ignores_node_names(machine8):
    """Isomorphic graphs with renamed nodes compile to the same arrays."""
    a = _chain(["n1", "n2", "n3"], [2.0, 1.0, 4.0])
    b = _chain(["x1", "x2", "x3"], [2.0, 1.0, 4.0])
    ka = structural_key(ConvexAllocationProblem(a, machine8))
    kb = structural_key(ConvexAllocationProblem(b, machine8))
    assert ka == kb


def test_structural_key_is_scale_invariant(machine8):
    """A global cost factor cancels in time_scale normalization."""
    a = _chain(["n1", "n2", "n3"], [2.0, 1.0, 4.0])
    b = _chain(["n1", "n2", "n3"], [20.0, 10.0, 40.0])
    ka = structural_key(ConvexAllocationProblem(a, machine8))
    kb = structural_key(ConvexAllocationProblem(b, machine8))
    assert ka == kb


def test_structural_key_distinguishes_costs_and_machines(machine8):
    mdg = graph()
    base = structural_key(ConvexAllocationProblem(mdg, machine8))
    other_machine = structural_key(ConvexAllocationProblem(mdg, cm5(8)))
    assert base != other_machine
    scaled = graph(seed=12)  # different random costs, same topology
    assert base != structural_key(ConvexAllocationProblem(scaled, machine8))


def test_layout_key_groups_cost_variants(machine8):
    """Same topology + different costs = warm-start neighbors.

    ``layered_random_mdg`` randomizes the *topology* per seed, so two
    seeds are generally not neighbors; only non-proportional cost edits
    on a fixed topology are.
    """
    p1 = ConvexAllocationProblem(_chain(["n1", "n2", "n3"], [2.0, 1.0, 4.0]), machine8)
    p2 = ConvexAllocationProblem(_chain(["n1", "n2", "n3"], [3.0, 5.0, 1.0]), machine8)
    assert structural_key(p1) != structural_key(p2)
    assert layout_key(p1) == layout_key(p2)


# ----- cache hits and telemetry ---------------------------------------------


def test_cache_hit_returns_identical_allocation(tmp_path):
    mdg = graph()
    jobs = [job_for(mdg, "cold"), job_for(mdg, "hot")]
    report = BatchCompiler(cache_dir=str(tmp_path)).run(jobs)
    cold, hot = report.results
    assert cold.cache == "miss" and hot.cache == "hit"
    assert hot.processors == cold.processors
    assert hot.phi == cold.phi
    assert hot.structural_key == cold.structural_key


def test_cache_disabled_reports_off():
    report = BatchCompiler(cache_dir=None).run([job_for(graph(), "j")])
    assert report.results[0].cache == "off"


def test_resume_false_writes_but_never_reads(tmp_path):
    mdg = graph()
    first = BatchCompiler(cache_dir=str(tmp_path), resume=False).run(
        [job_for(mdg, "a")]
    )
    assert first.results[0].cache == "miss"
    second = BatchCompiler(cache_dir=str(tmp_path), resume=False).run(
        [job_for(mdg, "b")]
    )
    assert second.results[0].cache == "miss"  # artifact exists, not read
    third = BatchCompiler(cache_dir=str(tmp_path), resume=True).run(
        [job_for(mdg, "c")]
    )
    assert third.results[0].cache == "hit"


def test_cache_telemetry_counters(tmp_path):
    mdg = graph()
    telemetry = obs.configure()
    try:
        BatchCompiler(cache_dir=str(tmp_path)).run(
            [job_for(mdg, "a"), job_for(mdg, "b")]
        )
    finally:
        obs.shutdown()
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["batch.cache.miss"] == 1
    assert counters["batch.cache.hit"] == 1
    assert counters["batch.jobs"] == 2
    events = [
        e for e in telemetry.collected_events() if e.get("type") == "event"
    ]
    names = [e["name"] for e in events]
    assert "batch.complete" in names
    assert names.count("batch.job") == 2


# ----- poisoning ------------------------------------------------------------


def _single_allocation_artifact(tmp_path):
    entries = list((tmp_path / "batch-allocation").glob("*.json"))
    assert len(entries) == 1
    return entries[0]


def test_corrupt_payload_is_quarantined_and_resolved(tmp_path):
    mdg = graph()
    compiler = BatchCompiler(cache_dir=str(tmp_path))
    baseline = compiler.run([job_for(mdg, "seed")]).results[0]

    # Flip bytes in the stored payload: the envelope checksum fails, the
    # store quarantines the entry, and the job re-solves from scratch.
    artifact = _single_allocation_artifact(tmp_path)
    artifact.write_text(artifact.read_text().replace("processors", "prXcessors"))
    # Drop the warm-start entry too so the re-solve is exactly as cold as
    # the baseline run (warm starts legitimately change the trajectory).
    shutil.rmtree(tmp_path / "batch-warmstart", ignore_errors=True)

    report = compiler.run([job_for(mdg, "victim")])
    result = report.results[0]
    assert result.cache == "poisoned"
    assert result.ok
    assert result.processors == baseline.processors  # re-solve, same answer
    # The corrupt entry went to quarantine and the fresh solve was stored
    # back under the same structural key.
    assert list((tmp_path / "quarantine").glob("*")), "expected quarantine"
    assert "prXcessors" not in artifact.read_text()


def test_tampered_solution_fails_kkt_recertification(tmp_path):
    """A well-formed envelope whose solution is wrong must not be trusted."""
    from repro.store.artifact import read_artifact, write_artifact

    mdg = graph()
    compiler = BatchCompiler(cache_dir=str(tmp_path))
    baseline = compiler.run([job_for(mdg, "seed")]).results[0]

    path = _single_allocation_artifact(tmp_path)
    artifact = read_artifact(path)
    payload = dict(artifact.payload)
    # A syntactically valid but non-optimal solution (uniform 1s).
    payload["processors_by_index"] = [
        1.0 for _ in payload["processors_by_index"]
    ]
    import dataclasses

    write_artifact(path, dataclasses.replace(artifact, payload=payload))
    shutil.rmtree(tmp_path / "batch-warmstart", ignore_errors=True)

    telemetry = obs.configure()
    try:
        report = compiler.run([job_for(mdg, "victim")])
    finally:
        obs.shutdown()
    result = report.results[0]
    assert result.cache == "poisoned"
    assert result.ok
    assert result.processors == baseline.processors
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["batch.cache.poisoned"] == 1


def test_wrong_length_payload_is_poisoned(tmp_path):
    from repro.store.artifact import read_artifact, write_artifact

    mdg = graph()
    compiler = BatchCompiler(cache_dir=str(tmp_path))
    compiler.run([job_for(mdg, "seed")])
    path = _single_allocation_artifact(tmp_path)
    artifact = read_artifact(path)
    payload = dict(artifact.payload)
    payload["processors_by_index"] = payload["processors_by_index"][:-1]
    import dataclasses

    write_artifact(path, dataclasses.replace(artifact, payload=payload))
    result = compiler.run([job_for(mdg, "victim")]).results[0]
    assert result.cache == "poisoned" and result.ok


def test_strict_store_raises_on_corruption(tmp_path):
    mdg = graph()
    compiler = BatchCompiler(cache_dir=str(tmp_path), strict=True)
    compiler.run([job_for(mdg, "seed")])
    artifact = _single_allocation_artifact(tmp_path)
    artifact.write_text("{not json")
    result = compiler.run([job_for(mdg, "victim")]).results[0]
    assert not result.ok
    assert result.error_type == "ArtifactCorruptError"


# ----- warm starts ----------------------------------------------------------


def test_warm_start_used_across_batches_and_reduces_attempts(tmp_path):
    seed_mdg = _chain(["n1", "n2", "n3"], [2.0, 1.0, 4.0])
    next_mdg = _chain(["n1", "n2", "n3"], [3.0, 5.0, 1.0])
    compiler = BatchCompiler(cache_dir=str(tmp_path))
    compiler.run([job_for(seed_mdg, "seed")])

    cold = BatchCompiler(cache_dir=None).run([job_for(next_mdg, "cold")])
    warm = compiler.run([job_for(next_mdg, "warm")])
    cold_result, warm_result = cold.results[0], warm.results[0]
    assert not cold_result.warm_start
    assert warm_result.warm_start
    assert warm_result.cache == "miss"  # different costs: no exact reuse
    # The warm attempt replaces the multistart ladder, so strictly fewer
    # solver attempts run than on the cold path.
    assert 0 < warm_result.solver_attempts < cold_result.solver_attempts
    # And it still lands on an optimal allocation of comparable quality.
    assert warm_result.phi == pytest.approx(cold_result.phi, rel=1e-4)


def test_warm_start_not_used_within_one_batch(tmp_path):
    """Intra-batch neighbors must not seed each other (determinism)."""
    report = BatchCompiler(cache_dir=str(tmp_path)).run(
        [
            job_for(_chain(["n1", "n2", "n3"], [2.0, 1.0, 4.0]), "a"),
            job_for(_chain(["n1", "n2", "n3"], [3.0, 5.0, 1.0]), "b"),
        ]
    )
    assert not any(r.warm_start for r in report.results)


def test_warm_start_telemetry(tmp_path):
    compiler = BatchCompiler(cache_dir=str(tmp_path))
    compiler.run([job_for(_chain(["n1", "n2", "n3"], [2.0, 1.0, 4.0]), "seed")])
    telemetry = obs.configure()
    try:
        compiler.run(
            [job_for(_chain(["n1", "n2", "n3"], [3.0, 5.0, 1.0]), "warm")]
        )
    finally:
        obs.shutdown()
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["batch.warm_start"] == 1


# ----- stacked-term memoization ---------------------------------------------


def test_term_weights_memoized_per_point(machine8):
    problem = ConvexAllocationProblem(graph(), machine8)
    calls = {"n": 0}
    original = ConvexAllocationProblem._compute_term_weights

    def counting(self, xlog):
        calls["n"] += 1
        return original(self, xlog)

    ConvexAllocationProblem._compute_term_weights = counting
    try:
        z = np.full(problem.n_vars, 0.3)
        v = np.ones(problem.n_nonlinear_constraints)
        problem.constraint_values(z)
        problem.constraint_jacobian(z)
        problem.constraint_hessian(z, v)
        assert calls["n"] == 1  # one exp shared by all three callbacks
        z2 = z.copy()
        z2[0] += 1e-9
        problem.constraint_values(z2)
        assert calls["n"] == 2  # a genuinely new point recomputes
        problem.constraint_values(z)
        assert calls["n"] == 3  # memo holds only the last-seen point
    finally:
        ConvexAllocationProblem._compute_term_weights = original


def test_memoized_values_match_fresh_problem(machine8):
    mdg = graph()
    p1 = ConvexAllocationProblem(mdg, machine8)
    p2 = ConvexAllocationProblem(mdg, machine8)
    z = np.full(p1.n_vars, 0.25)
    v = np.linspace(0.5, 1.5, p1.n_nonlinear_constraints)
    # Warm p1's memo at another point first, then compare everything.
    p1.constraint_values(np.zeros(p1.n_vars))
    np.testing.assert_array_equal(p1.constraint_values(z), p2.constraint_values(z))
    np.testing.assert_array_equal(
        p1.constraint_jacobian(z), p2.constraint_jacobian(z)
    )
    np.testing.assert_array_equal(
        p1.constraint_hessian(z, v), p2.constraint_hessian(z, v)
    )


def test_cached_constraint_objects_are_stable(machine8):
    problem = ConvexAllocationProblem(graph(), machine8)
    assert problem.linear_constraint() is problem.linear_constraint()
    assert problem.bounds() is problem.bounds()
    z = np.zeros(problem.n_vars)
    g = problem.objective_gradient(z)
    assert g is problem.objective_gradient(z)
    assert g[problem.layout.phi_index] == 1.0
