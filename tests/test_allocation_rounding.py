"""Unit tests for rounding, bounding, and the Section 5 factors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.allocation.rounding import (
    bound_allocation,
    optimal_processor_bound,
    round_allocation,
    theorem1_factor,
    theorem2_factor,
    theorem3_factor,
)
from repro.errors import AllocationError
from repro.utils.intmath import is_power_of_two


class TestRoundAllocation:
    def test_rounds_to_powers(self):
        rounded = round_allocation({"a": 3.2, "b": 1.0, "c": 6.1})
        assert rounded == {"a": 4, "b": 1, "c": 8}

    def test_float_just_below_one_clamps(self):
        assert round_allocation({"a": 1.0 - 1e-12})["a"] == 1

    def test_rejects_below_one(self):
        with pytest.raises(AllocationError):
            round_allocation({"a": 0.5})

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=3),
            st.floats(min_value=1.0, max_value=4096.0),
            min_size=1,
            max_size=8,
        )
    )
    def test_always_powers_within_theorem2_factors(self, alloc):
        rounded = round_allocation(alloc)
        for name, original in alloc.items():
            assert is_power_of_two(rounded[name])
            assert rounded[name] >= (2 / 3) * original * (1 - 1e-12)
            assert rounded[name] <= (4 / 3) * original * (1 + 1e-12)


class TestBoundAllocation:
    def test_clips(self):
        bounded = bound_allocation({"a": 16, "b": 4}, 8)
        assert bounded == {"a": 8, "b": 4}

    def test_rejects_non_power_bound(self):
        with pytest.raises(AllocationError, match="power of two"):
            bound_allocation({"a": 4}, 6)

    def test_rejects_unrounded_input(self):
        with pytest.raises(AllocationError, match="round first"):
            bound_allocation({"a": 6}, 8)

    def test_identity_when_under_bound(self):
        alloc = {"a": 2, "b": 4}
        assert bound_allocation(alloc, 8) == alloc


class TestTheoremFactors:
    def test_theorem1_formula(self):
        # p=64, PB=32: 1 + 64/33
        assert theorem1_factor(64, 32) == pytest.approx(1 + 64 / 33)

    def test_theorem1_pb_equals_p(self):
        assert theorem1_factor(64, 64) == pytest.approx(65.0)

    def test_theorem2_formula(self):
        assert theorem2_factor(64, 32) == pytest.approx(2.25 * 4.0)

    def test_theorem3_is_product(self):
        assert theorem3_factor(64, 16) == pytest.approx(
            theorem1_factor(64, 16) * theorem2_factor(64, 16)
        )

    def test_bound_cannot_exceed_machine(self):
        with pytest.raises(AllocationError):
            theorem1_factor(16, 32)

    @given(st.integers(min_value=1, max_value=10))
    def test_factors_at_least_one(self, k):
        p = 2**k
        for pb in [2**j for j in range(k + 1)]:
            assert theorem1_factor(p, pb) >= 1.0
            assert theorem2_factor(p, pb) >= 1.0


class TestOptimalProcessorBound:
    def test_is_power_of_two(self):
        for p in (1, 2, 4, 16, 64, 128):
            assert is_power_of_two(optimal_processor_bound(p))

    def test_minimizes_theorem3(self):
        for p in (4, 16, 64):
            best = optimal_processor_bound(p)
            best_value = theorem3_factor(p, best)
            for pb in [2**k for k in range(p.bit_length()) if 2**k <= p]:
                assert best_value <= theorem3_factor(p, pb) + 1e-12

    def test_single_processor(self):
        assert optimal_processor_bound(1) == 1

    def test_p64_prefers_half_machine(self):
        """For p = 64 the Theorem 3 factor is minimized at PB = 32."""
        assert optimal_processor_bound(64) == 32

    def test_non_power_machine(self):
        pb = optimal_processor_bound(48)
        assert is_power_of_two(pb)
        assert pb <= 48
