"""Property tests: serialization round-trips on randomized artifacts."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.generators import layered_random_mdg, random_mdg
from repro.graph.serialization import mdg_from_dict, mdg_to_dict
from repro.io.results import schedule_from_dict, schedule_to_dict

SETTINGS = dict(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

graphs = st.one_of(
    st.builds(
        lambda seed, layers, width: layered_random_mdg(layers, width, seed=seed),
        st.integers(min_value=0, max_value=3000),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    ),
    st.builds(
        lambda seed, n: random_mdg(n, seed=seed),
        st.integers(min_value=0, max_value=3000),
        st.integers(min_value=1, max_value=10),
    ),
)


@settings(**SETTINGS)
@given(graphs)
def test_mdg_round_trip_preserves_structure(mdg):
    restored = mdg_from_dict(mdg_to_dict(mdg))
    assert restored.node_names() == mdg.node_names()
    assert [(e.source, e.target) for e in restored.edges()] == [
        (e.source, e.target) for e in mdg.edges()
    ]


@settings(**SETTINGS)
@given(graphs, st.floats(min_value=1.0, max_value=64.0))
def test_mdg_round_trip_preserves_costs(mdg, p):
    restored = mdg_from_dict(mdg_to_dict(mdg))
    for name in mdg.node_names():
        assert restored.node(name).processing.cost(p) == pytest.approx(
            mdg.node(name).processing.cost(p)
        )


@settings(**SETTINGS)
@given(graphs)
def test_mdg_round_trip_preserves_transfers(mdg):
    restored = mdg_from_dict(mdg_to_dict(mdg))
    for edge in mdg.edges():
        other = restored.edge(edge.source, edge.target)
        assert [t.kind for t in other.transfers] == [
            t.kind for t in edge.transfers
        ]
        assert [t.length_bytes for t in other.transfers] == [
            t.length_bytes for t in edge.transfers
        ]


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=500),
    st.sampled_from([4, 8, 16]),
)
def test_schedule_round_trip_on_psa_output(seed, p):
    from repro.costs.transfer import TransferCostParameters
    from repro.machine.parameters import MachineParameters
    from repro.scheduling.psa import prioritized_schedule

    machine = MachineParameters(
        "m", p, TransferCostParameters(1e-4, 5e-9, 8e-5, 4e-9, 0.0)
    )
    mdg = layered_random_mdg(3, 2, seed=seed).normalized()
    schedule = prioritized_schedule(
        mdg, {name: float(p) for name in mdg.node_names()}, machine
    )
    restored = schedule_from_dict(schedule_to_dict(schedule))
    assert restored.makespan == pytest.approx(schedule.makespan)
    restored.validate()  # structural invariants survive the trip
    assert restored.allocation() == schedule.allocation()
    assert restored.useful_work_area() == pytest.approx(
        schedule.useful_work_area()
    )
