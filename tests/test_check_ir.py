"""Unit tests for the frontend/IR pass family (IR001-IR002)."""

from __future__ import annotations

from repro.check import Severity, check_document, check_mdg
from repro.frontend.ir import LoopProgram
from repro.frontend.lowering import lower_to_mdg


def program_two_writers():
    """w1 and w2 both write A: an output (write-write) dependence."""
    p = LoopProgram("two-writers")
    p.declare("A", 32, 32).declare("B", 32, 32)
    p.loop("w1", "matinit", writes="A")
    p.loop("w2", "matinit", writes="A")
    return p


def program_flow():
    """w writes A, r reads it: a flow (write-read) dependence."""
    p = LoopProgram("flow")
    p.declare("A", 32, 32).declare("B", 32, 32)
    p.loop("w", "matinit", writes="A")
    p.loop("r", "matadd", writes="B", reads=("A",))
    return p


def doc(nodes, edges):
    return {
        "schema_version": 1,
        "name": "t",
        "nodes": [
            {"name": n, "processing": {"kind": "amdahl", "alpha": 0.1, "tau": 1.0}}
            for n in nodes
        ],
        "edges": [{"source": s, "target": t, "transfers": []} for s, t in edges],
    }


def rule_ids(report):
    return {f.rule_id for f in report.findings}


class TestRaceDetection:
    def test_write_write_race(self):
        report = check_document(
            doc(["w1", "w2"], []), program=program_two_writers()
        )
        (finding,) = [f for f in report.findings if f.rule_id == "IR001"]
        assert finding.severity is Severity.ERROR
        assert "write-write" in finding.message

    def test_write_read_race(self):
        report = check_document(doc(["w", "r"], []), program=program_flow())
        (finding,) = [f for f in report.findings if f.rule_id == "IR001"]
        assert "write-read" in finding.message
        assert "'A'" in finding.message

    def test_direct_edge_orders_the_dependence(self):
        report = check_document(
            doc(["w", "r"], [("w", "r")]), program=program_flow()
        )
        assert "IR001" not in rule_ids(report)

    def test_transitive_path_orders_the_dependence(self):
        report = check_document(
            doc(["w", "mid", "r"], [("w", "mid"), ("mid", "r")]),
            program=program_flow(),
        )
        assert "IR001" not in rule_ids(report)

    def test_lowered_program_is_race_free(self):
        # lower_to_mdg materializes every dependence as an edge, so
        # checking the lowered MDG against its own program must be clean.
        program = program_flow()
        report = check_mdg(
            lower_to_mdg(program), program=program, compile_schedule=False
        )
        assert "IR001" not in rule_ids(report)
        assert not report.has_errors

    def test_no_program_no_race_findings(self):
        report = check_document(doc(["w1", "w2"], []))
        assert "IR001" not in rule_ids(report)
        assert "ir.races" in report.passes_run


class TestTransferKinds:
    def test_unpriceable_kind(self):
        bad = doc(["a", "b"], [("a", "b")])
        bad["edges"][0]["transfers"] = [
            {"length_bytes": 64, "kind": "diag2row", "label": "X"}
        ]
        report = check_document(bad)
        (finding,) = [f for f in report.findings if f.rule_id == "IR002"]
        assert finding.severity is Severity.ERROR
        assert "diag2row" in finding.message
        assert finding.location == "$.edges[0].transfers[0]"

    def test_all_table2_kinds_priceable(self):
        good = doc(["a", "b"], [("a", "b")])
        good["edges"][0]["transfers"] = [
            {"length_bytes": 64, "kind": k, "label": "X"}
            for k in ("row2row", "col2col", "row2col", "col2row")
        ]
        report = check_document(good)
        assert "IR002" not in rule_ids(report)
