"""Unit tests for schedule/result serialization."""

import json

import pytest

from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.errors import ValidationError
from repro.graph.generators import fork_join_mdg
from repro.io.results import (
    comparison_to_dict,
    experiment_to_json,
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.scheduling.psa import prioritized_schedule


@pytest.fixture
def schedule(cm5_16):
    mdg = fork_join_mdg(2, seed=0).normalized()
    allocation = solve_allocation(
        mdg, cm5_16, ConvexSolverOptions(multistart_targets=(4.0,))
    )
    return prioritized_schedule(mdg, allocation.processors, cm5_16)


class TestScheduleRoundTrip:
    def test_entries_preserved(self, schedule):
        restored = schedule_from_dict(schedule_to_dict(schedule))
        assert restored.makespan == pytest.approx(schedule.makespan)
        assert set(restored.entries) == set(schedule.entries)
        for name, entry in schedule.entries.items():
            other = restored.entry(name)
            assert other.start == pytest.approx(entry.start)
            assert other.processors == entry.processors

    def test_structural_validation_after_load(self, schedule):
        restored = schedule_from_dict(schedule_to_dict(schedule))
        restored.validate()  # structure-only (weights not serialized)

    def test_metrics_survive(self, schedule):
        restored = schedule_from_dict(schedule_to_dict(schedule))
        assert restored.useful_work_area() == pytest.approx(
            schedule.useful_work_area()
        )

    def test_info_scalars_kept_objects_dropped(self, schedule):
        data = schedule_to_dict(schedule)
        assert data["info"]["processor_bound"] == schedule.info["processor_bound"]
        assert "weights" not in data["info"]  # live object, not serializable

    def test_json_serializable(self, schedule):
        json.dumps(schedule_to_dict(schedule))

    def test_file_round_trip(self, schedule, tmp_path):
        path = tmp_path / "sched.json"
        save_schedule(schedule, path)
        restored = load_schedule(path)
        assert restored.total_processors == schedule.total_processors

    def test_bad_schema_version(self, schedule):
        data = schedule_to_dict(schedule)
        data["schema_version"] = 7
        with pytest.raises(ValidationError, match="schema"):
            schedule_from_dict(data)


class TestExperimentSerialization:
    def test_comparison_row(self, cm5_16):
        from repro.analysis.comparison import compare_spmd_mpmd
        from repro.machine.fidelity import HardwareFidelity

        row = compare_spmd_mpmd(
            fork_join_mdg(2, seed=0), cm5_16, HardwareFidelity.ideal()
        )
        data = comparison_to_dict(row)
        assert data["processors"] == 16
        assert "mpmd_speedup" in data

    def test_non_dataclass_rejected(self):
        with pytest.raises(ValidationError):
            comparison_to_dict({"not": "a dataclass"})

    def test_experiment_document(self, cm5_16):
        from repro.analysis.comparison import phi_vs_tpsa

        rows = [phi_vs_tpsa(fork_join_mdg(2, seed=0), cm5_16)]
        text = experiment_to_json(rows, "table3")
        document = json.loads(text)
        assert document["experiment"] == "table3"
        assert len(document["rows"]) == 1
        assert document["rows"][0]["processors"] == 16
