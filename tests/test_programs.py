"""Unit tests for the paper's test programs and extra workloads."""

import numpy as np
import pytest

from repro.costs.transfer import TransferKind
from repro.programs import (
    complex_matmul_program,
    fft2d_program,
    pipeline_program,
    reduction_tree_program,
    strassen_program,
)
from repro.programs.common import (
    array_transfer_1d,
    default_matinit,
    table1_matadd,
    table1_matmul,
)
from repro.programs.fft2d import hartley_matrix
from repro.programs.strassen import strassen_reference_product
from repro.runtime.executor import ValueExecutor
from repro.runtime.verify import sequential_reference, verify_against_reference


class TestTable1Models:
    def test_reference_values(self):
        """At n = 64 the models carry Table 1's constants verbatim."""
        add = table1_matadd(64)
        mul = table1_matmul(64)
        assert add.alpha == pytest.approx(0.067)
        assert add.tau == pytest.approx(3.73e-3)
        assert mul.alpha == pytest.approx(0.121)
        assert mul.tau == pytest.approx(298.47e-3)

    def test_complexity_scaling(self):
        assert table1_matadd(128).tau == pytest.approx(4 * table1_matadd(64).tau)
        assert table1_matmul(128).tau == pytest.approx(8 * table1_matmul(64).tau)
        assert default_matinit(32).tau == pytest.approx(default_matinit(64).tau / 4)

    def test_transfer_bytes(self):
        t = array_transfer_1d(64)
        assert t.length_bytes == 8 * 64 * 64
        assert t.kind == TransferKind.ROW2ROW


class TestComplexMatmul:
    def test_structure(self):
        bundle = complex_matmul_program(64)
        mdg = bundle.mdg
        # 4 inits + 4 muls + 2 adds.
        assert mdg.n_nodes == 10
        assert len(mdg.successors("init_Ar")) == 2
        assert mdg.predecessors("real") == ["mul_AiBi", "mul_ArBr"]
        assert set(mdg.sinks()) == {"real", "imag"}

    def test_all_transfers_1d(self):
        """Section 6: 'All the data transfers are of the 1D type.'"""
        for edge in complex_matmul_program(64).mdg.edges():
            assert all(t.kind.is_1d for t in edge.transfers)

    def test_computes_complex_product(self):
        bundle = complex_matmul_program(12)
        values = sequential_reference(bundle.app)
        a = values["init_Ar"] + 1j * values["init_Ai"]
        b = values["init_Br"] + 1j * values["init_Bi"]
        expected = a @ b
        assert np.allclose(values["real"], expected.real)
        assert np.allclose(values["imag"], expected.imag)

    def test_distributed_execution_correct(self):
        bundle = complex_matmul_program(12)
        report = ValueExecutor(bundle.app).run(
            {n: 3 for n in bundle.app.computational_nodes()}
        )
        verify_against_reference(bundle.app, report)

    def test_mul_costs_dominate_adds(self):
        mdg = complex_matmul_program(64).mdg
        assert mdg.node("mul_ArBr").processing.cost(1) > 10 * mdg.node(
            "real"
        ).processing.cost(1)


class TestStrassen:
    def test_structure(self):
        bundle = strassen_program(128)
        mdg = bundle.mdg
        # 8 inits + 10 pre + 7 products + 8 post = 33 loops.
        assert mdg.n_nodes == 33
        assert bundle.info["loops"] == 33
        products = [n for n in mdg.node_names() if n.startswith("P")]
        assert len(products) == 7

    def test_all_transfers_1d(self):
        for edge in strassen_program(128).mdg.edges():
            assert all(t.kind.is_1d for t in edge.transfers)

    def test_block_size_is_half(self):
        bundle = strassen_program(128)
        assert bundle.info["block"] == 64
        # P1 is a 64x64 multiply: Table 1's exact constants.
        assert bundle.mdg.node("P1").processing.tau == pytest.approx(298.47e-3)

    def test_odd_size_rejected(self):
        with pytest.raises(ValueError, match="even"):
            strassen_program(7)

    def test_equals_classical_product(self):
        bundle = strassen_program(24)
        report = ValueExecutor(bundle.app).run(
            {n: 2 for n in bundle.app.computational_nodes()}
        )
        verify_against_reference(bundle.app, report)
        c = np.block(
            [
                [report.outputs["C11"], report.outputs["C12"]],
                [report.outputs["C21"], report.outputs["C22"]],
            ]
        )
        assert np.allclose(c, strassen_reference_product(bundle))

    def test_uneven_groups_still_correct(self):
        bundle = strassen_program(16)
        alloc = {
            n: (1 + (hash(n) % 3)) for n in bundle.app.computational_nodes()
        }
        report = ValueExecutor(bundle.app).run(alloc)
        verify_against_reference(bundle.app, report)


class TestFft2d:
    def test_hartley_involution(self):
        """The normalized Hartley matrix is its own inverse."""
        w = hartley_matrix(16)
        assert np.allclose(w @ w, np.eye(16), atol=1e-10)

    def test_exercises_2d_transfers(self):
        kinds = [
            t.kind
            for e in fft2d_program(32).mdg.edges()
            for t in e.transfers
        ]
        assert TransferKind.ROW2COL in kinds
        assert TransferKind.COL2ROW in kinds

    def test_distributed_execution_correct(self):
        bundle = fft2d_program(16)
        report = ValueExecutor(bundle.app).run(
            {n: 4 for n in bundle.app.computational_nodes()}
        )
        verify_against_reference(bundle.app, report)

    def test_pipeline_is_a_chain(self):
        mdg = fft2d_program(16).mdg
        assert mdg.sources() == ["image"]
        assert mdg.sinks() == ["rows_back"]
        for name in mdg.node_names():
            assert len(mdg.successors(name)) <= 1


class TestSynthetic:
    def test_reduction_structure(self):
        bundle = reduction_tree_program(levels=3, n=16)
        mdg = bundle.mdg
        assert len([n for n in mdg.node_names() if n.startswith("leaf")]) == 8
        assert len(mdg.sinks()) == 1

    def test_reduction_computes_sum(self):
        bundle = reduction_tree_program(levels=2, n=8)
        values = sequential_reference(bundle.app)
        total = sum(values[f"leaf{k}"] for k in range(4))
        sink = bundle.app.sink_nodes()[0]
        assert np.allclose(values[sink], total)

    def test_reduction_distributed_correct(self):
        bundle = reduction_tree_program(levels=2, n=8)
        report = ValueExecutor(bundle.app).run(
            {n: 2 for n in bundle.app.computational_nodes()}
        )
        verify_against_reference(bundle.app, report)

    def test_pipeline_structure(self):
        bundle = pipeline_program(stages=3, n=16)
        mdg = bundle.mdg
        stages = [n for n in mdg.node_names() if n.startswith("stage")]
        assert len(stages) == 3
        # Each stage depends on the previous one.
        assert "stage0" in mdg.predecessors("stage1")

    def test_pipeline_distributed_correct(self):
        bundle = pipeline_program(stages=2, n=8)
        report = ValueExecutor(bundle.app).run(
            {n: 2 for n in bundle.app.computational_nodes()}
        )
        verify_against_reference(bundle.app, report)


class TestBundleConsistency:
    """The MDG and the AppGraph must describe the same computation."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: complex_matmul_program(16),
            lambda: strassen_program(16),
            lambda: fft2d_program(16),
            lambda: reduction_tree_program(2, 16),
            lambda: pipeline_program(2, 16),
        ],
    )
    def test_edges_match_wiring(self, factory):
        bundle = factory()
        wired = {
            (producer, name)
            for name, app_node in bundle.app.nodes.items()
            for producer in app_node.inputs.values()
        }
        mdg_edges = {(e.source, e.target) for e in bundle.mdg.edges()}
        assert wired == mdg_edges

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: complex_matmul_program(16),
            lambda: strassen_program(16),
            lambda: fft2d_program(16),
        ],
    )
    def test_transfer_bytes_match_array_sizes(self, factory):
        """Each declared transfer's L equals the real array's byte size."""
        bundle = factory()
        report = ValueExecutor(bundle.app).run(
            {n: 2 for n in bundle.app.computational_nodes()}
        )
        for stat in report.transfers:
            edge = bundle.mdg.edge(stat.producer, stat.consumer)
            declared = {t.length_bytes for t in edge.transfers}
            assert stat.array_bytes in declared
