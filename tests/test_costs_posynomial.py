"""Unit and property tests for the posynomial algebra."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.posynomial import CompiledPosynomial, Monomial, Posynomial
from repro.errors import PosynomialError

# ----- strategies -----------------------------------------------------------

coefficients = st.floats(min_value=1e-3, max_value=1e3)
exponents = st.floats(min_value=-3.0, max_value=3.0).map(lambda e: round(e, 3))
var_names = st.sampled_from(["p1", "p2", "p3"])


@st.composite
def monomials(draw):
    coef = draw(coefficients)
    n_vars = draw(st.integers(min_value=0, max_value=3))
    exps = {}
    for _ in range(n_vars):
        exps[draw(var_names)] = draw(exponents)
    return Monomial(coef, exps)


@st.composite
def posynomials(draw):
    terms = draw(st.lists(monomials(), min_size=0, max_size=4))
    return Posynomial(terms)


values_strategy = st.fixed_dictionaries(
    {v: st.floats(min_value=0.1, max_value=10.0) for v in ["p1", "p2", "p3"]}
)


# ----- Monomial -------------------------------------------------------------


class TestMonomial:
    def test_evaluate(self):
        m = Monomial(2.0, {"p": 2.0})
        assert m.evaluate({"p": 3.0}) == pytest.approx(18.0)

    def test_negative_exponent(self):
        m = Monomial(4.0, {"p": -1.0})
        assert m.evaluate({"p": 2.0}) == pytest.approx(2.0)

    def test_zero_exponents_dropped(self):
        m = Monomial(1.0, {"p": 0.0})
        assert m.variables() == frozenset()

    def test_rejects_non_positive_coefficient(self):
        with pytest.raises(PosynomialError):
            Monomial(0.0)
        with pytest.raises(PosynomialError):
            Monomial(-1.0)

    def test_rejects_nan_coefficient(self):
        with pytest.raises(PosynomialError):
            Monomial(math.nan)

    def test_rejects_infinite_exponent(self):
        with pytest.raises(PosynomialError):
            Monomial(1.0, {"p": math.inf})

    def test_rejects_non_string_variable(self):
        with pytest.raises(PosynomialError):
            Monomial(1.0, {1: 2.0})

    def test_multiplication_adds_exponents(self):
        a = Monomial(2.0, {"p": 1.0})
        b = Monomial(3.0, {"p": 2.0, "q": 1.0})
        c = a * b
        assert c.coefficient == pytest.approx(6.0)
        assert c.exponents == {"p": 3.0, "q": 1.0}

    def test_scalar_multiplication(self):
        assert (Monomial(2.0) * 3).coefficient == pytest.approx(6.0)
        assert (3 * Monomial(2.0)).coefficient == pytest.approx(6.0)

    def test_division(self):
        a = Monomial(6.0, {"p": 2.0})
        b = Monomial(2.0, {"p": 1.0})
        c = a / b
        assert c.coefficient == pytest.approx(3.0)
        assert c.exponents == {"p": 1.0}

    def test_power(self):
        m = Monomial(4.0, {"p": 2.0}) ** 0.5
        assert m.coefficient == pytest.approx(2.0)
        assert m.exponents == {"p": 1.0}

    def test_evaluate_missing_variable(self):
        with pytest.raises(PosynomialError, match="no value"):
            Monomial(1.0, {"p": 1.0}).evaluate({})

    def test_evaluate_non_positive_value(self):
        with pytest.raises(PosynomialError, match="positive"):
            Monomial(1.0, {"p": 1.0}).evaluate({"p": 0.0})

    def test_degree(self):
        m = Monomial(1.0, {"p": 2.5})
        assert m.degree("p") == 2.5
        assert m.degree("q") == 0.0

    @given(monomials(), monomials(), values_strategy)
    def test_multiplication_homomorphism(self, a, b, values):
        assert (a * b).evaluate(values) == pytest.approx(
            a.evaluate(values) * b.evaluate(values), rel=1e-9
        )


# ----- Posynomial -----------------------------------------------------------


class TestPosynomial:
    def test_constant(self):
        p = Posynomial.constant(3.0)
        assert p.is_constant()
        assert p.constant_value() == pytest.approx(3.0)

    def test_zero(self):
        z = Posynomial.zero()
        assert z.is_zero()
        assert z.evaluate({}) == 0.0

    def test_zero_evaluate_returns_float(self):
        # Regression (COST passes): the empty sum must be float 0.0, not
        # int 0, regardless of the variable values supplied.
        for values in ({}, {"p": 2.0}):
            result = Posynomial.zero().evaluate(values)
            assert isinstance(result, float)
            assert result == 0.0

    def test_degree(self):
        p = Posynomial([
            Monomial(2.0, {"p": 3.0}),
            Monomial(1.0, {"p": 1.0, "q": -2.0}),
        ])
        assert p.degree("p") == 3.0
        # The max runs over all terms, and the first term has q-degree 0.
        assert p.degree("q") == 0.0
        only_q = Posynomial([Monomial(1.0, {"q": -2.0})])
        assert only_q.degree("q") == -2.0

    def test_degree_absent_variable_is_zero(self):
        p = Posynomial([Monomial(2.0, {"p": 3.0})])
        assert p.degree("missing") == 0.0
        assert Posynomial.zero().degree("p") == 0.0
        assert isinstance(p.degree("missing"), float)

    def test_variable(self):
        p = Posynomial.variable("p")
        assert p.evaluate({"p": 4.0}) == pytest.approx(4.0)

    def test_like_terms_combine(self):
        p = Posynomial([Monomial(1.0, {"p": 1.0}), Monomial(2.0, {"p": 1.0})])
        assert len(p) == 1
        assert p.terms[0].coefficient == pytest.approx(3.0)

    def test_addition(self):
        p = Posynomial.variable("p") + 2.0
        assert p.evaluate({"p": 1.0}) == pytest.approx(3.0)

    def test_adding_zero_scalar_is_identity(self):
        p = Posynomial.variable("p")
        assert (p + 0.0) == p

    def test_subtraction_rejected(self):
        with pytest.raises(PosynomialError, match="cone"):
            Posynomial.variable("p") - 1.0

    def test_multiplication_distributes(self):
        p = (Posynomial.variable("p") + 1.0) * (Posynomial.variable("q") + 1.0)
        # p*q + p + q + 1
        assert len(p) == 4
        assert p.evaluate({"p": 2.0, "q": 3.0}) == pytest.approx(12.0)

    def test_scalar_multiplication_rejects_non_positive(self):
        with pytest.raises(PosynomialError):
            Posynomial.variable("p") * 0.0
        with pytest.raises(PosynomialError):
            Posynomial.variable("p") * -2.0

    def test_division_by_monomial(self):
        p = (Posynomial.variable("p") + 1.0) / Monomial(2.0, {"p": 1.0})
        assert p.evaluate({"p": 2.0}) == pytest.approx((2.0 + 1.0) / 4.0)

    def test_division_by_posynomial_rejected(self):
        with pytest.raises(PosynomialError, match="monomial"):
            Posynomial.variable("p") / (Posynomial.variable("q") + 1.0)

    def test_rtruediv_scalar_over_variable(self):
        p = 2.0 / Posynomial.variable("p")
        assert p.evaluate({"p": 4.0}) == pytest.approx(0.5)

    def test_rtruediv_non_monomial_rejected(self):
        with pytest.raises(PosynomialError):
            2.0 / (Posynomial.variable("p") + 1.0)

    def test_integer_power(self):
        p = (Posynomial.variable("p") + 1.0) ** 2
        assert p.evaluate({"p": 3.0}) == pytest.approx(16.0)

    def test_monomial_fractional_power(self):
        p = Posynomial.variable("p") ** 0.5
        assert p.evaluate({"p": 9.0}) == pytest.approx(3.0)

    def test_non_monomial_fractional_power_rejected(self):
        with pytest.raises(PosynomialError):
            (Posynomial.variable("p") + 1.0) ** 0.5

    def test_negative_power_of_non_monomial_rejected(self):
        with pytest.raises(PosynomialError):
            (Posynomial.variable("p") + 1.0) ** -1

    def test_substitute_monomial(self):
        p = Posynomial.variable("p") + 2.0 / Posynomial.variable("p")
        q = p.substitute({"p": Posynomial.monomial(2.0, {"q": 1.0})})
        # 2q + 1/q
        assert q.evaluate({"q": 1.0}) == pytest.approx(3.0)

    def test_substitute_scalar(self):
        p = Posynomial.variable("p") + 1.0
        q = p.substitute({"p": 3.0})
        assert q.constant_value() == pytest.approx(4.0)

    def test_substitute_posynomial_into_negative_power_rejected(self):
        p = 1.0 / Posynomial.variable("p")
        with pytest.raises(PosynomialError):
            p.substitute({"p": Posynomial.variable("q") + 1.0})

    def test_variables(self):
        p = Posynomial.variable("a") * Posynomial.variable("b") + 1.0
        assert p.variables() == frozenset({"a", "b"})

    def test_equality(self):
        a = Posynomial.variable("p") + 1.0
        b = Posynomial.constant(1.0) + Posynomial.variable("p")
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_deterministic(self):
        p = Posynomial.variable("b") + Posynomial.variable("a")
        assert repr(p) == repr(Posynomial.variable("a") + Posynomial.variable("b"))

    @given(posynomials(), posynomials(), values_strategy)
    @settings(max_examples=50)
    def test_addition_homomorphism(self, a, b, values):
        assert (a + b).evaluate(values) == pytest.approx(
            a.evaluate(values) + b.evaluate(values), rel=1e-9, abs=1e-12
        )

    @given(posynomials(), posynomials(), values_strategy)
    @settings(max_examples=50)
    def test_multiplication_homomorphism(self, a, b, values):
        assert (a * b).evaluate(values) == pytest.approx(
            a.evaluate(values) * b.evaluate(values), rel=1e-8, abs=1e-12
        )

    @given(posynomials(), values_strategy)
    @settings(max_examples=50)
    def test_log_evaluation_matches(self, p, values):
        log_values = {k: math.log(v) for k, v in values.items()}
        assert p.evaluate_log(log_values) == pytest.approx(
            p.evaluate(values), rel=1e-9, abs=1e-12
        )


# ----- Cone closure (robustness properties) ----------------------------------


def assert_in_cone(p: Posynomial) -> None:
    """Every term has a finite positive coefficient and finite exponents."""
    for term in p.terms:
        assert math.isfinite(term.coefficient), repr(p)
        assert term.coefficient > 0.0, repr(p)
        for exponent in term.exponents.values():
            assert math.isfinite(exponent), repr(p)


bad_scalars = st.one_of(
    st.floats(max_value=0.0),  # includes -inf and 0
    st.just(math.nan),
    st.just(math.inf),
)


class TestConeClosure:
    """The algebra never silently leaves the posynomial cone.

    Closed operations keep all coefficients/exponents finite and positive;
    out-of-cone inputs raise :class:`PosynomialError` instead of producing
    NaN/Inf terms that would poison the solver downstream.
    """

    @given(posynomials(), posynomials())
    @settings(max_examples=50)
    def test_addition_stays_in_cone(self, a, b):
        assert_in_cone(a + b)

    @given(posynomials(), posynomials())
    @settings(max_examples=50)
    def test_multiplication_stays_in_cone(self, a, b):
        assert_in_cone(a * b)

    @given(posynomials(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=50)
    def test_integer_power_stays_in_cone(self, p, k):
        assert_in_cone(p**k)

    @given(monomials(), st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=50)
    def test_monomial_power_stays_in_cone(self, m, e):
        assert_in_cone(Posynomial([m]) ** e)

    @given(posynomials(), monomials())
    @settings(max_examples=50)
    def test_division_by_monomial_stays_in_cone(self, p, m):
        assert_in_cone(p / m)

    @given(posynomials(), monomials())
    @settings(max_examples=50)
    def test_substitution_stays_in_cone(self, p, m):
        replacement = Posynomial([m])
        substituted = p.substitute({v: replacement for v in p.variables()})
        assert_in_cone(substituted)

    @given(posynomials(), values_strategy)
    @settings(max_examples=50)
    def test_evaluation_is_finite_and_nonnegative(self, p, values):
        result = p.evaluate(values)
        assert math.isfinite(result)
        assert result >= 0.0

    @given(bad_scalars)
    def test_bad_coefficient_rejected(self, c):
        with pytest.raises(PosynomialError):
            Monomial(c)

    @given(st.one_of(st.just(math.nan), st.just(math.inf), st.just(-math.inf)))
    def test_bad_exponent_rejected(self, e):
        with pytest.raises(PosynomialError):
            Monomial(1.0, {"p": e})

    @given(posynomials(), bad_scalars)
    @settings(max_examples=50)
    def test_bad_scalar_product_rejected(self, p, c):
        with pytest.raises(PosynomialError):
            p * c

    @given(st.floats(max_value=-1e-9, allow_nan=False))
    def test_negative_scalar_addition_rejected(self, c):
        with pytest.raises(PosynomialError):
            Posynomial.variable("p1") + c

    @given(st.floats(max_value=0.0))
    def test_non_positive_evaluation_point_rejected(self, v):
        p = Posynomial.variable("p1") + 1.0
        with pytest.raises(PosynomialError):
            p.evaluate({"p1": v})


# ----- CompiledPosynomial -----------------------------------------------------


class TestCompiledPosynomial:
    def test_value_matches_symbolic(self):
        p = 2.0 / Posynomial.variable("p1") + 0.5 * Posynomial.variable("p2")
        c = p.compile(["p1", "p2"])
        x = np.log([2.0, 4.0])
        assert c.value(x) == pytest.approx(p.evaluate({"p1": 2.0, "p2": 4.0}))

    def test_compile_missing_variable_rejected(self):
        p = Posynomial.variable("p1")
        with pytest.raises(PosynomialError, match="missing"):
            p.compile(["p2"])

    def test_zero_posynomial(self):
        c = Posynomial.zero().compile(["p1"])
        assert c.value(np.array([0.0])) == 0.0
        value, grad = c.value_and_gradient(np.array([0.0]))
        assert value == 0.0
        assert grad.shape == (1,)
        assert np.all(grad == 0.0)

    @given(posynomials(), values_strategy)
    @settings(max_examples=40)
    def test_gradient_matches_finite_differences(self, p, values):
        order = ["p1", "p2", "p3"]
        c = p.compile(order)
        x = np.array([math.log(values[v]) for v in order])
        value, grad = c.value_and_gradient(x)
        eps = 1e-6
        # The FD quotient carries cancellation error proportional to the
        # function magnitude (~ f * ulp / eps), so the absolute tolerance
        # must scale with f or large-valued posynomials fail spuriously.
        abs_tol = 1e-6 * max(1.0, value)
        for k in range(len(order)):
            xp = x.copy()
            xp[k] += eps
            xm = x.copy()
            xm[k] -= eps
            numeric = (c.value(xp) - c.value(xm)) / (2 * eps)
            assert grad[k] == pytest.approx(numeric, rel=1e-4, abs=abs_tol)

    @given(posynomials(), values_strategy)
    @settings(max_examples=25)
    def test_hessian_matches_finite_differences(self, p, values):
        order = ["p1", "p2", "p3"]
        c = p.compile(order)
        x = np.array([math.log(values[v]) for v in order])
        hess = c.hessian(x)
        assert hess.shape == (3, 3)
        assert np.allclose(hess, hess.T)
        eps = 1e-5
        for k in range(3):
            xp = x.copy()
            xp[k] += eps
            xm = x.copy()
            xm[k] -= eps
            numeric = (c.gradient(xp) - c.gradient(xm)) / (2 * eps)
            assert np.allclose(hess[:, k], numeric, rtol=1e-3, atol=1e-5)

    @given(posynomials(), values_strategy)
    @settings(max_examples=25)
    def test_hessian_positive_semidefinite(self, p, values):
        """The GP transform makes every posynomial convex in log space."""
        order = ["p1", "p2", "p3"]
        c = p.compile(order)
        x = np.array([math.log(values[v]) for v in order])
        eigenvalues = np.linalg.eigvalsh(c.hessian(x))
        assert np.all(eigenvalues >= -1e-8 * max(1.0, abs(eigenvalues).max()))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(PosynomialError):
            CompiledPosynomial(np.array([1.0]), np.zeros((2, 1)), ("p",))

    def test_rejects_non_positive_coefficients(self):
        with pytest.raises(PosynomialError):
            CompiledPosynomial(np.array([0.0]), np.zeros((1, 1)), ("p",))
