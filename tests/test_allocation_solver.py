"""Tests for the convex allocation solver — correctness against oracles."""

import math

import pytest

from repro.allocation.exhaustive import exhaustive_best_allocation
from repro.allocation.formulation import ConvexAllocationProblem
from repro.allocation.result import Allocation
from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.costs.node_weights import MDGCostModel
from repro.costs.processing import AmdahlProcessingCost
from repro.costs.transfer import ArrayTransfer, TransferCostParameters, TransferKind
from repro.errors import AllocationError, SolverError
from repro.graph.generators import fork_join_mdg, paper_example_mdg
from repro.graph.mdg import MDG
from repro.machine.parameters import MachineParameters
from repro.machine.presets import cm5


class TestAllocationResult:
    def test_integral_detection(self):
        a = Allocation(processors={"a": 2.0, "b": 4.0})
        assert a.is_integral
        assert a.as_integer() == {"a": 2, "b": 4}

    def test_fractional_rejected_by_as_integer(self):
        a = Allocation(processors={"a": 2.5})
        assert not a.is_integral
        with pytest.raises(AllocationError):
            a.as_integer()

    def test_rejects_empty(self):
        with pytest.raises(AllocationError):
            Allocation(processors={})

    def test_rejects_non_positive(self):
        with pytest.raises(AllocationError):
            Allocation(processors={"a": 0.0})

    def test_makespan_lower_bound(self):
        a = Allocation(
            processors={"a": 1.0}, average_finish_time=2.0, critical_path_time=3.0
        )
        assert a.makespan_lower_bound == 3.0
        assert Allocation(processors={"a": 1.0}).makespan_lower_bound is None

    def test_with_processors_resets_diagnostics(self):
        a = Allocation(
            processors={"a": 2.7}, phi=1.0, average_finish_time=1.0,
            critical_path_time=1.0,
        )
        b = a.with_processors({"a": 2.0}, note="rounded")
        assert b.processors == {"a": 2.0}
        assert b.phi == 1.0
        assert b.average_finish_time is None
        assert b.info["note"] == "rounded"


class TestSolverOnMotivatingExample:
    """The Figure 1/2 example: the solver must find the paper's scheme."""

    def test_optimal_allocation_shape(self, machine4):
        mdg = paper_example_mdg().normalized()
        result = solve_allocation(mdg, machine4)
        # The paper's Figure 2(b): N1 on all 4, N2 and N3 on 2 each.
        assert result.processors["N1"] == pytest.approx(4.0, abs=0.05)
        assert result.processors["N2"] == pytest.approx(2.0, abs=0.05)
        assert result.processors["N3"] == pytest.approx(2.0, abs=0.05)

    def test_phi_matches_exhaustive(self, machine4):
        mdg = paper_example_mdg().normalized()
        result = solve_allocation(mdg, machine4)
        oracle = exhaustive_best_allocation(mdg, machine4)
        # Continuous optimum <= best power-of-two allocation value.
        assert result.phi <= oracle.phi * (1 + 1e-6)
        # And here the integer optimum is achievable continuously.
        assert result.phi == pytest.approx(oracle.phi, rel=2e-3)

    def test_beats_spmd(self, machine4):
        from repro.allocation.baselines import spmd_allocation

        mdg = paper_example_mdg().normalized()
        result = solve_allocation(mdg, machine4)
        spmd = spmd_allocation(mdg, machine4)
        assert result.phi < spmd.makespan_lower_bound


class TestSolverGeneral:
    def test_phi_lower_bounds_exhaustive_with_transfers(self, cm5_16):
        mdg = fork_join_mdg(3, seed=1).normalized()
        result = solve_allocation(mdg, cm5_16)
        oracle = exhaustive_best_allocation(mdg, cm5_16)
        assert result.phi <= oracle.phi * (1 + 1e-6)

    def test_diagnostics_use_exact_model(self, cm5_16):
        mdg = fork_join_mdg(2, seed=3).normalized()
        result = solve_allocation(mdg, cm5_16)
        cm = MDGCostModel(mdg, cm5_16.transfer_model())
        assert result.average_finish_time == pytest.approx(
            cm.average_finish_time(result.processors, 16)
        )
        assert result.critical_path_time == pytest.approx(
            cm.critical_path_time(result.processors)
        )

    def test_allocations_within_bounds(self, cm5_16):
        mdg = fork_join_mdg(4, seed=2).normalized()
        result = solve_allocation(mdg, cm5_16)
        for name, value in result.processors.items():
            assert 1.0 - 1e-9 <= value <= 16.0 + 1e-6, name

    def test_dummy_nodes_pinned_to_one(self, machine4):
        mdg = paper_example_mdg().normalized()  # two sinks -> dummy STOP
        result = solve_allocation(mdg, machine4)
        from repro.graph.mdg import STOP_NAME

        assert result.processors[STOP_NAME] == pytest.approx(1.0)

    def test_single_node_graph(self):
        machine = MachineParameters("m", 8, TransferCostParameters.zero())
        mdg = MDG("solo")
        mdg.add_node("only", AmdahlProcessingCost(0.2, 1.0))
        result = solve_allocation(mdg, machine)
        # A_p = T*p/8 grows with p, C_p = T shrinks: optimum interior or at 8.
        assert 1.0 <= result.processors["only"] <= 8.0
        assert result.phi <= 1.0  # never worse than serial

    def test_chain_prefers_full_machine_without_transfers(self):
        """With no transfers and a chain, every node should use all p
        (pure data parallelism is optimal when A_p does not bind)."""
        machine = MachineParameters("m", 4, TransferCostParameters.zero())
        mdg = MDG("chain")
        mdg.add_node("a", AmdahlProcessingCost(0.0, 1.0))
        mdg.add_node("b", AmdahlProcessingCost(0.0, 1.0))
        mdg.add_edge("a", "b")
        result = solve_allocation(mdg, machine)
        assert result.processors["a"] == pytest.approx(4.0, rel=1e-3)
        assert result.processors["b"] == pytest.approx(4.0, rel=1e-3)
        assert result.phi == pytest.approx(0.5, rel=1e-3)

    def test_transfer_costs_pull_allocations_down(self):
        """Expensive start-ups make huge groups unattractive: the optimum
        with transfers allocates no more than without."""
        mdg = fork_join_mdg(2, seed=5)
        free = MachineParameters("free", 16, TransferCostParameters.zero())
        costly = MachineParameters(
            "costly",
            16,
            TransferCostParameters(t_ss=5e-2, t_ps=1e-6, t_sr=5e-2, t_pr=1e-6),
        )
        a_free = solve_allocation(mdg.normalized(), free)
        a_costly = solve_allocation(mdg.normalized(), costly)
        total_free = sum(
            v for k, v in a_free.processors.items() if k.startswith("branch")
        )
        total_costly = sum(
            v for k, v in a_costly.processors.items() if k.startswith("branch")
        )
        assert total_costly <= total_free + 1e-6

    def test_solver_options_methods(self, machine4):
        mdg = paper_example_mdg().normalized()
        for method in ("trust-constr", "slsqp"):
            result = solve_allocation(
                mdg, machine4, ConvexSolverOptions(method=method)
            )
            assert result.phi == pytest.approx(15.75, rel=5e-3)

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError):
            ConvexSolverOptions(method="genetic").resolved_methods()

    def test_info_records_solver_details(self, machine4):
        result = solve_allocation(paper_example_mdg().normalized(), machine4)
        assert "solver" in result.info
        assert result.info["total_processors"] == 4


class TestFormulation:
    def test_feasible_initial_point(self, cm5_16):
        mdg = fork_join_mdg(3, seed=1).normalized()
        problem = ConvexAllocationProblem(mdg, cm5_16)
        for target in (1.0, 4.0, 16.0):
            z0 = problem.initial_point(target)
            assert problem.max_violation(z0) <= 1e-9

    def test_gradient_matches_finite_differences(self, cm5_16):
        import numpy as np

        mdg = fork_join_mdg(2, seed=8).normalized()
        problem = ConvexAllocationProblem(mdg, cm5_16)
        z = problem.initial_point(3.0)
        jac = problem.constraint_jacobian(z)
        eps = 1e-7
        for k in range(problem.n_vars):
            zp, zm = z.copy(), z.copy()
            zp[k] += eps
            zm[k] -= eps
            numeric = (problem.constraint_values(zp) - problem.constraint_values(zm)) / (
                2 * eps
            )
            assert np.allclose(jac[:, k], numeric, rtol=1e-4, atol=1e-6)

    def test_hessian_combination_symmetric_psd(self, cm5_16):
        import numpy as np

        mdg = fork_join_mdg(2, seed=8).normalized()
        problem = ConvexAllocationProblem(mdg, cm5_16)
        z = problem.initial_point(2.0)
        v = np.ones(problem.n_nonlinear_constraints)
        h = problem.constraint_hessian(z, v)
        assert np.allclose(h, h.T)
        eig = np.linalg.eigvalsh(h)
        assert np.all(eig >= -1e-8 * max(1.0, abs(eig).max()))

    def test_time_scale_applied(self, cm5_16):
        mdg = fork_join_mdg(2, seed=8).normalized()
        problem = ConvexAllocationProblem(mdg, cm5_16)
        z0 = problem.initial_point(2.0)
        assert problem.phi_seconds(z0) == pytest.approx(
            z0[problem.layout.phi_index] * problem.time_scale
        )
        # Scaled objective should be O(1).
        assert 1e-3 < z0[problem.layout.phi_index] < 1e3


class TestExhaustive:
    def test_guard_against_explosion(self):
        mdg = fork_join_mdg(10, seed=0).normalized()
        with pytest.raises(AllocationError, match="enumerate"):
            exhaustive_best_allocation(mdg, cm5(64), max_combinations=100)

    def test_returns_integral_powers(self, machine4):
        mdg = paper_example_mdg().normalized()
        result = exhaustive_best_allocation(mdg, machine4)
        from repro.utils.intmath import is_power_of_two

        for value in result.as_integer().values():
            assert is_power_of_two(value)

    def test_phi_is_exact_max(self, machine4):
        mdg = paper_example_mdg().normalized()
        result = exhaustive_best_allocation(mdg, machine4)
        assert result.phi == pytest.approx(
            max(result.average_finish_time, result.critical_path_time)
        )
