"""Unit tests for the intra-node data-parallel planner."""

import pytest

from repro.codegen.datapar import estimate_intra_comm_time, plan_node
from repro.errors import CodegenError
from repro.machine.presets import CM5_TRANSFER
from repro.runtime.kernels import (
    Assemble2x2,
    Extract,
    JacobiSweep,
    MatAdd,
    MatInit,
    MatMul,
    RowTransform,
)


class TestPlanShapes:
    def test_elementwise_is_communication_free(self):
        plan = plan_node(MatAdd(64, 64), 8)
        assert plan.is_communication_free
        assert plan.group == 8

    def test_init_and_transform_free(self):
        import numpy as np

        assert plan_node(MatInit(16, 16, lambda i, j: i), 4).is_communication_free
        assert plan_node(RowTransform(16, 16, np.eye(16)), 4).is_communication_free

    def test_matmul_allgather(self):
        plan = plan_node(MatMul(64, 64, 64), 8)
        assert len(plan.comm_steps) == 1
        step = plan.comm_steps[0]
        assert step.pattern == "allgather"
        assert step.messages_per_rank == 7
        # Each rank circulates its 1/8 block 7 times.
        assert step.bytes_per_rank == pytest.approx(8 * 64 * 64 / 8 * 7)

    def test_matmul_single_rank_free(self):
        assert plan_node(MatMul(64, 64, 64), 1).is_communication_free

    def test_jacobi_halo(self):
        plan = plan_node(JacobiSweep(64, 64), 4)
        assert plan.comm_steps[0].pattern == "halo"
        assert plan.comm_steps[0].messages_per_rank == 2

    def test_block_plumbing_gather(self):
        assert plan_node(Extract(64, 64, 0, 0, 32, 32), 4).comm_steps[0].pattern == "gather"
        assert plan_node(Assemble2x2(32, 32), 4).comm_steps[0].pattern == "gather"

    def test_rank_rows_balanced(self):
        for group in (1, 3, 7, 16):
            plan = plan_node(MatAdd(64, 64), group)
            assert plan.balanced()
            assert plan.rank_rows[0][0] == 0
            assert plan.rank_rows[-1][1] == 64

    def test_unknown_kernel_rejected(self):
        class Weird(MatAdd):
            pass

        # Subclasses still match isinstance; build a genuinely foreign one.
        from repro.runtime.kernels import Kernel

        class Foreign(Kernel):
            input_names = ()

            def input_distribution(self, name, processors):  # pragma: no cover
                raise NotImplementedError

            def output_distribution(self, processors):
                from repro.runtime.distribution import RowBlock

                return RowBlock(self.rows, self.cols, processors)

            def serial(self, inputs):  # pragma: no cover
                raise NotImplementedError

            def local(self, rank, inputs):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(CodegenError, match="no intra-node plan"):
            plan_node(Foreign(4, 4), 2)


class TestCommTimeEstimates:
    def test_free_plan_costs_nothing(self):
        plan = plan_node(MatAdd(64, 64), 8)
        assert estimate_intra_comm_time(plan, CM5_TRANSFER) == 0.0

    def test_allgather_time_grows_with_group(self):
        times = [
            estimate_intra_comm_time(plan_node(MatMul(64, 64, 64), g), CM5_TRANSFER)
            for g in (2, 4, 8, 16)
        ]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_table1_alpha_is_physically_plausible(self):
        """The measured MatMul serial fraction (12.1%) should be the same
        order of magnitude as the intra-node allgather our plan derives —
        evidence the Amdahl folding of intra-loop communication is sound.

        alpha*tau ~ the part of the loop that does not shrink with p; at
        p = 64 the allgather takes a comparable slice of the loop time.
        """
        from repro.programs.common import table1_matmul

        model = table1_matmul(64)
        plan = plan_node(MatMul(64, 64, 64), 64)
        comm = estimate_intra_comm_time(plan, CM5_TRANSFER)
        serial_floor = model.alpha * model.tau
        assert 0.2 * serial_floor < comm < 5.0 * serial_floor

    def test_total_comm_bytes(self):
        plan = plan_node(MatMul(64, 64, 64), 4)
        # 4 ranks x (3 hops x 8192 B) = 98304.
        assert plan.total_comm_bytes == pytest.approx(4 * 3 * (8 * 64 * 64 / 4))
