"""Unit tests for the processing-cost combinators."""

import math

import pytest

from repro.costs.extensions import (
    CommunicationAwareCost,
    ScaledProcessingCost,
    SumProcessingCost,
    optimal_processors,
)
from repro.costs.posynomial import Posynomial
from repro.costs.processing import AmdahlProcessingCost, ZeroProcessingCost
from repro.errors import CostModelError


def base():
    return AmdahlProcessingCost(alpha=0.1, tau=2.0)


class TestScaled:
    def test_cost_scaled(self):
        model = ScaledProcessingCost(base(), 3.0)
        assert model.cost(4) == pytest.approx(3.0 * base().cost(4))

    def test_posynomial_matches(self):
        model = ScaledProcessingCost(base(), 0.5)
        poly = model.posynomial("p")
        for p in (1.0, 2.0, 8.0):
            assert poly.evaluate({"p": p}) == pytest.approx(model.cost(p))

    def test_zero_base_stays_zero(self):
        model = ScaledProcessingCost(ZeroProcessingCost(), 5.0)
        assert model.cost(4) == 0.0
        assert model.posynomial("p").is_zero()

    def test_validation(self):
        with pytest.raises(CostModelError):
            ScaledProcessingCost("not a model", 1.0)
        with pytest.raises(Exception):
            ScaledProcessingCost(base(), 0.0)


class TestSum:
    def test_parts_add(self):
        model = SumProcessingCost((base(), base(), ZeroProcessingCost()))
        assert model.cost(4) == pytest.approx(2 * base().cost(4))

    def test_posynomial_matches(self):
        model = SumProcessingCost((base(), AmdahlProcessingCost(0.5, 1.0)))
        poly = model.posynomial("p")
        for p in (1.0, 3.0, 16.0):
            assert poly.evaluate({"p": p}) == pytest.approx(model.cost(p))

    def test_empty_rejected(self):
        with pytest.raises(CostModelError):
            SumProcessingCost(())

    def test_bad_part_rejected(self):
        with pytest.raises(CostModelError):
            SumProcessingCost((base(), 42))


class TestCommunicationAware:
    def test_cost_formula(self):
        model = CommunicationAwareCost(base(), comm_coefficient=0.01, gamma=1.0)
        assert model.cost(4) == pytest.approx(base().cost(4) + 0.04)

    def test_posynomial_matches(self):
        model = CommunicationAwareCost(base(), comm_coefficient=0.02, gamma=0.5)
        poly = model.posynomial("p")
        for p in (1.0, 4.0, 64.0):
            assert poly.evaluate({"p": p}) == pytest.approx(model.cost(p))

    def test_cost_times_p_still_posynomial(self):
        """The Lemma 1 condition survives the extra term."""
        model = CommunicationAwareCost(base(), comm_coefficient=0.01)
        product = model.posynomial("p") * Posynomial.variable("p")
        assert product.evaluate({"p": 4.0}) == pytest.approx(model.cost(4.0) * 4.0)

    def test_interior_optimum(self):
        model = CommunicationAwareCost(base(), comm_coefficient=0.005, gamma=1.0)
        p_star = model.optimal_processors_unbounded()
        # (1-0.1)*2 / 0.005 = 360 -> sqrt = ~18.97
        assert p_star == pytest.approx(math.sqrt(360.0))
        # Cost really is higher on either side.
        assert model.cost(p_star) < model.cost(p_star / 2)
        assert model.cost(p_star) < model.cost(p_star * 2)

    def test_unbounded_when_no_comm(self):
        model = CommunicationAwareCost(base(), comm_coefficient=0.0)
        assert model.optimal_processors_unbounded() == math.inf

    def test_gamma_zero_rejected(self):
        with pytest.raises(CostModelError):
            CommunicationAwareCost(base(), comm_coefficient=0.1, gamma=0.0)

    def test_allocator_respects_interior_optimum(self, machine4):
        """The convex solver stops adding processors where the model says
        they stop helping — no clamping heuristics needed."""
        from repro.allocation import solve_allocation
        from repro.graph.mdg import MDG

        model = CommunicationAwareCost(
            AmdahlProcessingCost(0.0, 1.0), comm_coefficient=0.1, gamma=1.0
        )
        mdg = MDG("one")
        mdg.add_node("only", model)
        result = solve_allocation(mdg, machine4)
        p_star = model.optimal_processors_unbounded()  # sqrt(10) ~ 3.16
        assert result.processors["only"] == pytest.approx(p_star, rel=0.05)


class TestOptimalProcessors:
    def test_monotone_model_takes_maximum(self):
        assert optimal_processors(base(), 16) == 16

    def test_interior_model(self):
        model = CommunicationAwareCost(base(), comm_coefficient=0.02, gamma=1.0)
        best = optimal_processors(model, 64)
        assert 2 <= best <= 20
        assert model.cost(best) <= model.cost(best + 1)
        assert model.cost(best) <= model.cost(max(best - 1, 1))

    def test_validation(self):
        with pytest.raises(CostModelError):
            optimal_processors(base(), 0)
