"""Tests for the one-call bundle execution convenience."""

import pytest

from repro.pipeline import execute_bundle
from repro.machine.fidelity import HardwareFidelity
from repro.programs import complex_matmul_program, reduction_tree_program
from repro.scheduling.psa import PSAOptions


class TestExecuteBundle:
    @pytest.fixture(scope="class")
    def execution(self, request):
        from repro.machine.presets import cm5

        return execute_bundle(
            complex_matmul_program(16), cm5(8), HardwareFidelity.ideal()
        )

    def test_compilation_present(self, execution):
        assert execution.compilation.style == "MPMD"
        assert execution.predicted_makespan > 0

    def test_simulation_bounded_by_prediction(self, execution):
        assert execution.measured_makespan <= execution.predicted_makespan * (
            1 + 1e-9
        )

    def test_value_report_verified_and_placed(self, execution):
        assert 0.0 <= execution.locality_fraction <= 1.0
        assert execution.value_report.total_bytes_moved() > 0

    def test_groups_match_schedule(self, execution):
        for name, group in execution.value_report.allocation.items():
            assert group == execution.compilation.schedule.entry(name).width

    def test_verification_failure_surfaces(self, cm5_16, monkeypatch):
        """verify=True must actually verify: a corrupted kernel fails."""
        import numpy as np

        from repro.errors import ValidationError
        from repro.runtime.kernels import MatAdd

        bundle = reduction_tree_program(levels=1, n=8)
        original = MatAdd.op.__func__ if hasattr(MatAdd.op, "__func__") else MatAdd.op

        def corrupted(a, b):
            return a + b + 1e-3

        monkeypatch.setattr(MatAdd, "op", staticmethod(corrupted))
        with pytest.raises(ValidationError):
            # Sequential reference uses the same kernel, so corrupt only
            # the local path: easiest is to corrupt the block directly.
            # Instead, disable verification corruption check by corrupting
            # asymmetric behaviour: use rank-dependent noise.
            def rank_dependent(self, rank, inputs):
                return inputs["a"].block(rank) + inputs["b"].block(rank) + rank

            monkeypatch.setattr(MatAdd, "local", rank_dependent)
            execute_bundle(bundle, cm5_16, HardwareFidelity.ideal())

    def test_psa_options_forwarded(self, cm5_16):
        execution = execute_bundle(
            complex_matmul_program(16),
            cm5_16,
            HardwareFidelity.ideal(),
            psa_options=PSAOptions(processor_bound=2),
        )
        assert execution.compilation.schedule.info["processor_bound"] == 2

    def test_verify_false_skips_check(self, cm5_16):
        execution = execute_bundle(
            complex_matmul_program(16), cm5_16, verify=False
        )
        assert execution.value_report is not None
