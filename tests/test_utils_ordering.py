"""Unit tests for stable topological ordering."""

import pytest

from repro.errors import CycleError
from repro.utils.ordering import stable_topological_order


class TestStableTopologicalOrder:
    def test_chain(self):
        order = stable_topological_order(["a", "b", "c"], {"a": ["b"], "b": ["c"]})
        assert order == ["a", "b", "c"]

    def test_ties_break_lexicographically(self):
        order = stable_topological_order(
            ["z", "a", "m"], {}
        )
        assert order == ["a", "m", "z"]

    def test_diamond(self):
        order = stable_topological_order(
            ["top", "l", "r", "bot"],
            {"top": ["l", "r"], "l": ["bot"], "r": ["bot"]},
        )
        assert order[0] == "top"
        assert order[-1] == "bot"
        assert set(order[1:3]) == {"l", "r"}

    def test_deterministic_across_runs(self):
        nodes = [f"n{i}" for i in range(20)]
        succ = {f"n{i}": [f"n{i + 5}"] for i in range(15)}
        assert stable_topological_order(nodes, succ) == stable_topological_order(
            nodes, succ
        )

    def test_cycle_detected(self):
        with pytest.raises(CycleError, match="cycle"):
            stable_topological_order(["a", "b"], {"a": ["b"], "b": ["a"]})

    def test_self_loop_detected(self):
        with pytest.raises(CycleError):
            stable_topological_order(["a"], {"a": ["a"]})

    def test_unknown_edge_target_rejected(self):
        with pytest.raises(CycleError, match="not a declared node"):
            stable_topological_order(["a"], {"a": ["ghost"]})

    def test_empty_graph(self):
        assert stable_topological_order([], {}) == []

    def test_respects_all_edges(self):
        nodes = ["d", "c", "b", "a"]
        succ = {"d": ["c"], "c": ["b"], "b": ["a"]}
        order = stable_topological_order(nodes, succ)
        position = {v: k for k, v in enumerate(order)}
        for u, targets in succ.items():
            for v in targets:
                assert position[u] < position[v]
