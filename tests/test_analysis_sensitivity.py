"""Unit tests for the sensitivity sweep and the Theorem 2 verifier."""

import pytest

from repro.analysis.sensitivity import communication_sensitivity, sensitivity_table
from repro.machine.presets import cm5
from repro.programs import complex_matmul_program
from repro.scheduling.bounds import verify_theorem2


class TestCommunicationSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        return communication_sensitivity(
            complex_matmul_program(32).mdg, cm5(16), factors=(0.5, 1.0, 4.0)
        )

    def test_one_point_per_factor(self, points):
        assert [p.factor for p in points] == [0.5, 1.0, 4.0]

    def test_phi_increases_with_communication_cost(self, points):
        phis = [p.phi for p in points]
        assert phis == sorted(phis)
        assert phis[-1] > phis[0]

    def test_groups_shrink_or_hold_as_comm_grows(self, points):
        """More expensive messages never make wider groups attractive."""
        means = [p.mean_group for p in points]
        assert means[0] >= means[-1] - 1e-9

    def test_allocation_recorded_without_dummies(self, points):
        for point in points:
            assert all(not name.startswith("__") for name in point.allocation)

    def test_t_psa_at_least_phi_ish(self, points):
        for point in points:
            assert point.t_psa >= point.phi * 0.8

    def test_table_renders(self, points):
        text = sensitivity_table(points)
        assert "comm x" in text
        assert "widest group" in text


class TestTheorem2Verifier:
    def test_holds_on_paper_program(self, cm5_16):
        from repro.pipeline import compile_mdg

        result = compile_mdg(complex_matmul_program(32).mdg, cm5_16)
        report = verify_theorem2(result.schedule, cm5_16, result.phi)
        assert report.theorem == "theorem2"
        assert report.holds
        # The lower bound is near Phi in practice, far below the factor.
        assert report.tightness < 0.5

    def test_factor_matches_formula(self, cm5_16):
        from repro.allocation.rounding import theorem2_factor
        from repro.pipeline import compile_mdg

        result = compile_mdg(complex_matmul_program(32).mdg, cm5_16)
        pb = result.schedule.info["processor_bound"]
        report = verify_theorem2(result.schedule, cm5_16, result.phi)
        assert report.factor == pytest.approx(theorem2_factor(16, pb))
