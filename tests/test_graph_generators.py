"""Unit tests for the MDG generators (determinism, shape, validity)."""

import pytest

from repro.graph.generators import (
    chain_mdg,
    diamond_mdg,
    fork_join_mdg,
    layered_random_mdg,
    paper_example_mdg,
    random_mdg,
    series_parallel_mdg,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: chain_mdg(6, seed=11),
            lambda: fork_join_mdg(4, seed=11),
            lambda: diamond_mdg(3, seed=11),
            lambda: layered_random_mdg(3, 3, seed=11),
            lambda: series_parallel_mdg(5, seed=11),
            lambda: random_mdg(10, seed=11),
        ],
    )
    def test_same_seed_same_graph(self, factory):
        a, b = factory(), factory()
        assert a.node_names() == b.node_names()
        assert [(e.source, e.target) for e in a.edges()] == [
            (e.source, e.target) for e in b.edges()
        ]
        for name in a.node_names():
            assert a.node(name).processing.cost(4) == pytest.approx(
                b.node(name).processing.cost(4)
            )

    def test_different_seed_different_costs(self):
        a = chain_mdg(6, seed=1)
        b = chain_mdg(6, seed=2)
        costs_a = [n.processing.cost(1) for n in a.nodes()]
        costs_b = [n.processing.cost(1) for n in b.nodes()]
        assert costs_a != costs_b


class TestShapes:
    def test_chain(self):
        mdg = chain_mdg(5)
        mdg.validate()
        assert mdg.n_nodes == 5
        assert mdg.n_edges == 4
        assert mdg.is_normalized

    def test_fork_join(self):
        mdg = fork_join_mdg(3)
        mdg.validate()
        assert mdg.n_nodes == 5
        assert len(mdg.successors("fork")) == 3
        assert len(mdg.predecessors("join")) == 3

    def test_diamond(self):
        mdg = diamond_mdg(2)
        mdg.validate()
        assert mdg.n_nodes == 1 + 3 * 2
        assert mdg.is_normalized

    def test_layered_every_noninitial_node_has_pred(self):
        mdg = layered_random_mdg(4, 3, seed=5, edge_probability=0.2)
        mdg.validate()
        for layer in range(1, 4):
            for i in range(3):
                assert mdg.predecessors(f"L{layer}_{i}")

    def test_series_parallel_is_dag(self):
        mdg = series_parallel_mdg(10, seed=9)
        mdg.validate()
        assert mdg.n_nodes == 12

    def test_random_is_dag(self):
        mdg = random_mdg(20, seed=4, edge_probability=0.4)
        mdg.validate()

    def test_transfer_probability_zero_gives_bare_edges(self):
        mdg = chain_mdg(5, seed=0, transfer_probability=0.0)
        assert all(not e.transfers for e in mdg.edges())

    def test_transfer_probability_one_gives_transfers(self):
        mdg = chain_mdg(5, seed=0, transfer_probability=1.0)
        assert all(e.transfers for e in mdg.edges())


class TestPaperExample:
    def test_structure_matches_figure1(self):
        mdg = paper_example_mdg()
        assert mdg.node_names() == ["N1", "N2", "N3"]
        assert mdg.successors("N1") == ["N2", "N3"]
        assert mdg.sinks() == ["N2", "N3"]

    def test_custom_costs(self):
        from repro.costs.processing import AmdahlProcessingCost

        costs = [AmdahlProcessingCost(0.1, t) for t in (1.0, 2.0, 3.0)]
        mdg = paper_example_mdg(costs)
        assert mdg.node("N3").processing.cost(1) == pytest.approx(3.0)

    def test_wrong_cost_count_rejected(self):
        from repro.costs.processing import AmdahlProcessingCost
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            paper_example_mdg([AmdahlProcessingCost(0.1, 1.0)])
