"""Unit tests for bottom-up MDG coarsening."""

import pytest

from repro.costs.processing import AmdahlProcessingCost
from repro.costs.transfer import ArrayTransfer, TransferKind
from repro.errors import GraphError
from repro.graph.coarsen import coarsen_mdg, expand_allocation
from repro.graph.generators import layered_random_mdg
from repro.graph.mdg import MDG
from repro.programs import complex_matmul_program, strassen_program


def chain_with_bytes(byte_list):
    mdg = MDG("chain")
    names = [f"n{k}" for k in range(len(byte_list) + 1)]
    for name in names:
        mdg.add_node(name, AmdahlProcessingCost(0.1, 1.0))
    for k, nbytes in enumerate(byte_list):
        mdg.add_edge(
            names[k],
            names[k + 1],
            [ArrayTransfer(float(nbytes), TransferKind.ROW2ROW)],
        )
    return mdg


class TestCoarsenBasics:
    def test_target_reached(self):
        mdg = chain_with_bytes([100, 200, 300, 400])
        result = coarsen_mdg(mdg, 2)
        assert result.coarse.n_nodes == 2
        result.coarse.validate()

    def test_heaviest_edge_merged_first(self):
        mdg = chain_with_bytes([100, 999, 100])
        result = coarsen_mdg(mdg, 3)
        grouped = [m for m in result.members.values() if len(m) == 2]
        assert grouped == [["n1", "n2"]]  # the 999-byte edge

    def test_internalized_bytes_tracked(self):
        mdg = chain_with_bytes([100, 999, 100])
        result = coarsen_mdg(mdg, 3)
        assert result.internalized_bytes == 999.0

    def test_compute_cost_preserved(self):
        mdg = chain_with_bytes([1, 1])
        result = coarsen_mdg(mdg, 1)
        total = sum(node.processing.cost(1.0) for node in mdg.nodes())
        merged = sum(node.processing.cost(1.0) for node in result.coarse.nodes())
        assert merged == pytest.approx(total)

    def test_no_op_when_target_not_smaller(self):
        mdg = chain_with_bytes([1, 1])
        result = coarsen_mdg(mdg, 10)
        assert result.coarse.n_nodes == mdg.n_nodes
        assert all(len(m) == 1 for m in result.members.values())

    def test_members_partition_nodes(self):
        mdg = layered_random_mdg(4, 3, seed=8)
        result = coarsen_mdg(mdg, 4)
        all_members = sorted(
            name for group in result.members.values() for name in group
        )
        assert all_members == sorted(mdg.node_names())

    def test_coarse_graph_stays_acyclic(self):
        for seed in (1, 2, 3, 4):
            mdg = layered_random_mdg(4, 4, seed=seed)
            result = coarsen_mdg(mdg, 3)
            result.coarse.validate()  # raises CycleError if broken

    def test_diamond_merge_avoids_cycle(self):
        """Merging across one branch of a diamond must not produce a
        cycle with the other branch."""
        mdg = MDG("d")
        for name in ("top", "l", "r", "bot"):
            mdg.add_node(name, AmdahlProcessingCost(0.1, 1.0))
        big = [ArrayTransfer(1000.0, TransferKind.ROW2ROW)]
        small = [ArrayTransfer(10.0, TransferKind.ROW2ROW)]
        mdg.add_edge("top", "l", big)
        mdg.add_edge("top", "r", small)
        mdg.add_edge("l", "bot", small)
        mdg.add_edge("r", "bot", small)
        result = coarsen_mdg(mdg, 3)
        result.coarse.validate()
        assert result.coarse.n_nodes == 3

    def test_paper_programs_coarsen(self):
        for bundle in (complex_matmul_program(32), strassen_program(32)):
            result = coarsen_mdg(bundle.mdg, 6)
            assert result.coarse.n_nodes <= 8  # may stop early on structure
            result.coarse.validate()


class TestExpandAllocation:
    def test_members_inherit_group(self):
        mdg = chain_with_bytes([100, 999, 100])
        result = coarsen_mdg(mdg, 3)
        coarse_alloc = {name: 4.0 for name in result.coarse.node_names()}
        fine = expand_allocation(result, coarse_alloc)
        assert set(fine) == set(mdg.node_names())
        assert all(v == 4.0 for v in fine.values())

    def test_missing_coarse_node_rejected(self):
        mdg = chain_with_bytes([1])
        result = coarsen_mdg(mdg, 1)
        with pytest.raises(GraphError, match="missing"):
            expand_allocation(result, {})

    def test_expanded_allocation_schedules(self, cm5_16):
        """End-to-end: coarse convex solve -> expand -> fine PSA."""
        from repro.allocation.solver import ConvexSolverOptions, solve_allocation
        from repro.scheduling.psa import prioritized_schedule

        mdg = strassen_program(64).mdg.normalized()
        result = coarsen_mdg(mdg, 8)
        coarse_alloc = solve_allocation(
            result.coarse.normalized(),
            cm5_16,
            ConvexSolverOptions(multistart_targets=(4.0,)),
        )
        fine = expand_allocation(
            result,
            {
                k: v
                for k, v in coarse_alloc.processors.items()
                if k in result.coarse
            },
        )
        schedule = prioritized_schedule(mdg, fine, cm5_16)
        assert schedule.is_complete
        schedule.validate(schedule.info["weights"])
