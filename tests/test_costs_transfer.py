"""Unit tests for the 1D/2D data-transfer cost models (Eqs. 2-3, Lemma 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costs.transfer import (
    ArrayTransfer,
    TransferCostModel,
    TransferCostParameters,
    TransferKind,
)
from repro.errors import CostModelError, ValidationError

PARAMS = TransferCostParameters(
    t_ss=777.56e-6, t_ps=486.98e-9, t_sr=465.58e-6, t_pr=426.25e-9, t_n=0.0
)
PARAMS_WITH_NET = TransferCostParameters(
    t_ss=1e-4, t_ps=1e-8, t_sr=1e-4, t_pr=1e-8, t_n=2e-9
)

L = 8.0 * 64 * 64  # one 64x64 double array

procs = st.sampled_from([1.0, 2.0, 3.0, 4.0, 8.0, 16.0, 64.0])


class TestTransferKind:
    def test_1d_kinds(self):
        assert TransferKind.ROW2ROW.is_1d
        assert TransferKind.COL2COL.is_1d
        assert not TransferKind.ROW2ROW.is_2d

    def test_2d_kinds(self):
        assert TransferKind.ROW2COL.is_2d
        assert TransferKind.COL2ROW.is_2d
        assert not TransferKind.ROW2COL.is_1d


class TestTransferCostParameters:
    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            TransferCostParameters(-1.0, 0, 0, 0, 0)

    def test_zero_factory(self):
        z = TransferCostParameters.zero()
        assert z.t_ss == z.t_ps == z.t_sr == z.t_pr == z.t_n == 0.0

    def test_scaled(self):
        s = PARAMS.scaled(2.0)
        assert s.t_ss == pytest.approx(2 * PARAMS.t_ss)
        assert s.t_pr == pytest.approx(2 * PARAMS.t_pr)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            PARAMS.scaled(0.0)


class TestArrayTransfer:
    def test_rejects_zero_length(self):
        with pytest.raises(ValidationError):
            ArrayTransfer(0.0, TransferKind.ROW2ROW)

    def test_rejects_bad_kind(self):
        with pytest.raises(CostModelError):
            ArrayTransfer(1.0, "row2row")


class TestEquation2_1D:
    """The 1D (same-dimension) formulas of Eq. 2."""

    model = TransferCostModel(PARAMS)
    transfer = ArrayTransfer(L, TransferKind.ROW2ROW)

    def test_send_equal_groups(self):
        # max(p,p)/p = 1 message start-up, L/p bytes.
        cost = self.model.send_cost(self.transfer, 4, 4)
        assert cost == pytest.approx(PARAMS.t_ss + L / 4 * PARAMS.t_ps)

    def test_send_smaller_to_larger(self):
        # max(2,8)/2 = 4 start-ups per sender.
        cost = self.model.send_cost(self.transfer, 2, 8)
        assert cost == pytest.approx(4 * PARAMS.t_ss + L / 2 * PARAMS.t_ps)

    def test_receive_larger_to_smaller(self):
        # max(8,2)/2 = 4 start-ups per receiver.
        cost = self.model.receive_cost(self.transfer, 8, 2)
        assert cost == pytest.approx(4 * PARAMS.t_sr + L / 2 * PARAMS.t_pr)

    def test_network_zero_on_cm5(self):
        assert self.model.network_cost(self.transfer, 4, 8) == 0.0

    def test_network_with_tn(self):
        model = TransferCostModel(PARAMS_WITH_NET)
        cost = model.network_cost(self.transfer, 4, 8)
        assert cost == pytest.approx(L / 8 * PARAMS_WITH_NET.t_n)

    def test_col2col_equals_row2row(self):
        other = ArrayTransfer(L, TransferKind.COL2COL)
        assert self.model.send_cost(other, 2, 8) == pytest.approx(
            self.model.send_cost(self.transfer, 2, 8)
        )

    def test_components_sum_to_cost(self):
        s, b = self.model.send_cost_components(self.transfer, 2, 8)
        assert s + b == pytest.approx(self.model.send_cost(self.transfer, 2, 8))
        s, b = self.model.receive_cost_components(self.transfer, 2, 8)
        assert s + b == pytest.approx(self.model.receive_cost(self.transfer, 2, 8))


class TestEquation3_2D:
    """The 2D (dimension-changing) formulas of Eq. 3."""

    model = TransferCostModel(PARAMS)
    transfer = ArrayTransfer(L, TransferKind.ROW2COL)

    def test_send(self):
        # Every sender messages every receiver: p_j start-ups.
        cost = self.model.send_cost(self.transfer, 4, 8)
        assert cost == pytest.approx(8 * PARAMS.t_ss + L / 4 * PARAMS.t_ps)

    def test_receive(self):
        cost = self.model.receive_cost(self.transfer, 4, 8)
        assert cost == pytest.approx(4 * PARAMS.t_sr + L / 8 * PARAMS.t_pr)

    def test_network(self):
        model = TransferCostModel(PARAMS_WITH_NET)
        cost = model.network_cost(self.transfer, 4, 8)
        assert cost == pytest.approx(L / 32 * PARAMS_WITH_NET.t_n)

    def test_2d_send_costlier_than_1d_at_scale(self):
        """More, smaller messages: 2D start-up cost dominates at large p."""
        t1 = ArrayTransfer(L, TransferKind.ROW2ROW)
        t2 = ArrayTransfer(L, TransferKind.ROW2COL)
        assert self.model.send_cost(t2, 16, 16) > self.model.send_cost(t1, 16, 16)

    def test_total_cost_sums_components(self):
        total = self.model.total_cost(self.transfer, 4, 8)
        assert total == pytest.approx(
            self.model.send_cost(self.transfer, 4, 8)
            + self.model.network_cost(self.transfer, 4, 8)
            + self.model.receive_cost(self.transfer, 4, 8)
        )


class TestEdgeAggregates:
    model = TransferCostModel(PARAMS)

    def test_multiple_arrays_sum(self):
        transfers = [
            ArrayTransfer(L, TransferKind.ROW2ROW),
            ArrayTransfer(2 * L, TransferKind.ROW2COL),
        ]
        total = self.model.edge_send_cost(transfers, 4, 4)
        assert total == pytest.approx(
            sum(self.model.send_cost(t, 4, 4) for t in transfers)
        )

    def test_empty_edge_is_free(self):
        assert self.model.edge_send_cost([], 4, 4) == 0.0
        assert self.model.edge_receive_cost([], 4, 4) == 0.0
        assert self.model.edge_network_cost([], 4, 4) == 0.0


class TestPosynomialForms:
    """Lemma 2: the symbolic forms must match the numeric evaluations."""

    model = TransferCostModel(PARAMS_WITH_NET)

    @given(procs, procs)
    def test_1d_send_with_max_var(self, pi, pj):
        transfer = ArrayTransfer(L, TransferKind.ROW2ROW)
        poly = self.model.send_posynomial(transfer, "pi", "pj", "mx")
        value = poly.evaluate({"pi": pi, "pj": pj, "mx": max(pi, pj)})
        assert value == pytest.approx(self.model.send_cost(transfer, pi, pj))

    @given(procs, procs)
    def test_1d_receive_with_max_var(self, pi, pj):
        transfer = ArrayTransfer(L, TransferKind.COL2COL)
        poly = self.model.receive_posynomial(transfer, "pi", "pj", "mx")
        value = poly.evaluate({"pi": pi, "pj": pj, "mx": max(pi, pj)})
        assert value == pytest.approx(self.model.receive_cost(transfer, pi, pj))

    @given(procs, procs)
    def test_2d_send_needs_no_max(self, pi, pj):
        transfer = ArrayTransfer(L, TransferKind.ROW2COL)
        poly = self.model.send_posynomial(transfer, "pi", "pj", "")
        assert "" not in {v for v in poly.variables()}
        value = poly.evaluate({"pi": pi, "pj": pj})
        assert value == pytest.approx(self.model.send_cost(transfer, pi, pj))

    @given(procs, procs)
    def test_2d_network_exact(self, pi, pj):
        transfer = ArrayTransfer(L, TransferKind.COL2ROW)
        poly = self.model.network_posynomial(transfer, "pi", "pj")
        value = poly.evaluate({"pi": pi, "pj": pj})
        assert value == pytest.approx(self.model.network_cost(transfer, pi, pj))

    @given(procs, procs)
    def test_1d_network_relaxation_is_upper_bound(self, pi, pj):
        """(pi*pj)^(-1/2) >= 1/max(pi,pj): the relaxation never
        underestimates the network delay."""
        transfer = ArrayTransfer(L, TransferKind.ROW2ROW)
        poly = self.model.network_posynomial(transfer, "pi", "pj")
        relaxed = poly.evaluate({"pi": pi, "pj": pj})
        exact = self.model.network_cost(transfer, pi, pj)
        assert relaxed >= exact * (1 - 1e-12)

    def test_1d_network_relaxation_exact_when_equal(self):
        transfer = ArrayTransfer(L, TransferKind.ROW2ROW)
        poly = self.model.network_posynomial(transfer, "pi", "pj")
        assert poly.evaluate({"pi": 8.0, "pj": 8.0}) == pytest.approx(
            self.model.network_cost(transfer, 8, 8)
        )

    def test_zero_params_give_zero_posynomials(self):
        model = TransferCostModel(TransferCostParameters.zero())
        transfer = ArrayTransfer(L, TransferKind.ROW2ROW)
        assert model.send_posynomial(transfer, "a", "b", "m").is_zero()
        assert model.receive_posynomial(transfer, "a", "b", "m").is_zero()
        assert model.network_posynomial(transfer, "a", "b").is_zero()


class TestValidation:
    def test_rejects_non_positive_processors(self):
        model = TransferCostModel(PARAMS)
        transfer = ArrayTransfer(L, TransferKind.ROW2ROW)
        with pytest.raises(CostModelError):
            model.send_cost(transfer, 0, 4)
        with pytest.raises(CostModelError):
            model.receive_cost(transfer, 4, -1)

    def test_rejects_bad_parameters_object(self):
        with pytest.raises(CostModelError):
            TransferCostModel({"t_ss": 1.0})
