"""Unit tests for the fluent MDG builder."""

import pytest

from repro.costs.transfer import ArrayTransfer, TransferKind
from repro.errors import GraphError
from repro.graph.builders import MDGBuilder, amdahl


def one_array():
    return ArrayTransfer(1024.0, TransferKind.ROW2ROW)


class TestMDGBuilder:
    def test_fluent_construction(self):
        mdg = (
            MDGBuilder("demo")
            .node("a", amdahl(0.1, 1.0))
            .node("b", amdahl(0.1, 2.0))
            .node("c", amdahl(0.1, 0.5), after=["a", "b"], transfer=one_array())
            .build()
        )
        assert mdg.n_nodes == 3
        assert mdg.predecessors("c") == ["a", "b"]
        assert mdg.edge("a", "c").transfers[0].length_bytes == 1024.0

    def test_transfer_list(self):
        transfers = [one_array(), one_array()]
        mdg = (
            MDGBuilder("t")
            .node("a", amdahl(0.1, 1.0))
            .node("b", amdahl(0.1, 1.0), after=["a"], transfer=transfers)
            .build()
        )
        assert len(mdg.edge("a", "b").transfers) == 2

    def test_explicit_edge(self):
        mdg = (
            MDGBuilder("e")
            .node("a", amdahl(0.1, 1.0))
            .node("b", amdahl(0.1, 1.0))
            .edge("a", "b", [one_array()])
            .build()
        )
        assert mdg.has_edge("a", "b")

    def test_chain(self):
        mdg = MDGBuilder("c").chain(["x", "y", "z"], amdahl(0.2, 1.0)).build()
        assert mdg.topological_order() == ["x", "y", "z"]
        assert mdg.n_edges == 2

    def test_normalize_on_build(self):
        mdg = (
            MDGBuilder("n")
            .node("a", amdahl(0.1, 1.0))
            .node("b", amdahl(0.1, 1.0))
            .build(normalize=True)
        )
        assert mdg.is_normalized

    def test_single_use(self):
        builder = MDGBuilder("s").node("a", amdahl(0.1, 1.0))
        builder.build()
        with pytest.raises(GraphError, match="already produced"):
            builder.node("b", amdahl(0.1, 1.0))
        with pytest.raises(GraphError):
            builder.build()

    def test_after_unknown_node_rejected(self):
        with pytest.raises(GraphError):
            MDGBuilder("u").node("a", amdahl(0.1, 1.0), after=["ghost"])

    def test_amdahl_shorthand(self):
        model = amdahl(0.25, 2.0, name="k")
        assert model.alpha == 0.25
        assert model.tau == 2.0
        assert model.name == "k"
