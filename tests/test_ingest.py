"""Unit tests for the hardened ingestion layer (repro.io.ingest)."""

import json

import pytest

from repro.errors import IngestError, ValidationError
from repro.graph.generators import paper_example_mdg
from repro.graph.serialization import load_mdg, mdg_to_dict, save_mdg
from repro.io.ingest import (
    Diagnostic,
    IngestLimits,
    load_mdg_checked,
    load_schedule_checked,
    read_json_file,
    validate_mdg_dict,
    validate_schedule_dict,
)
from repro.io.results import load_schedule, save_schedule, schedule_to_dict
from repro.machine.parameters import MachineParameters
from repro.costs.transfer import TransferCostParameters
from repro.pipeline import compile_mdg


@pytest.fixture
def mdg_file(tmp_path):
    path = tmp_path / "mdg.json"
    save_mdg(paper_example_mdg(), path)
    return path


class TestReadJsonFile:
    def test_valid(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text('{"a": 1}')
        assert read_json_file(path) == {"a": 1}

    def test_missing_file(self, tmp_path):
        with pytest.raises(IngestError, match="cannot read"):
            read_json_file(tmp_path / "absent.json")

    def test_truncated_json(self, tmp_path):
        path = tmp_path / "cut.json"
        path.write_text('{"a": [1, 2')
        with pytest.raises(IngestError, match="not valid JSON") as exc:
            read_json_file(path)
        (diag,) = exc.value.diagnostics
        assert "line 1" in diag.path
        assert "truncated" in diag.reason

    def test_oversized_file_rejected_before_parse(self, tmp_path):
        path = tmp_path / "big.json"
        path.write_text("[" + "1," * 2000 + "1]")
        limits = IngestLimits(max_bytes=100)
        with pytest.raises(IngestError, match="too large") as exc:
            read_json_file(path, limits=limits)
        assert "limit is 100" in str(exc.value)

    def test_non_utf8(self, tmp_path):
        path = tmp_path / "bin.json"
        path.write_bytes(b"\xff\xfe\x00\x01")
        with pytest.raises(IngestError, match="cannot read"):
            read_json_file(path)


class TestValidateMdgDict:
    def test_clean_document(self):
        assert validate_mdg_dict(mdg_to_dict(paper_example_mdg())) == []

    def test_not_an_object(self):
        diags = validate_mdg_dict([1, 2])
        assert len(diags) == 1
        assert "must be an object" in diags[0].reason

    def test_collects_all_problems_at_once(self):
        data = {
            "schema_version": 7,
            "nodes": [
                {"name": "", "processing": {"kind": "amdahl"}},
                {"name": "a", "processing": {"kind": "warp-drive"}},
                {"name": "a", "processing": {"kind": "zero"}},
            ],
            "edges": [{"source": "a", "target": "ghost"}],
        }
        diags = validate_mdg_dict(data)
        reasons = "\n".join(str(d) for d in diags)
        assert "unsupported version 7" in reasons
        assert "non-empty string" in reasons  # empty name
        assert "alpha" in reasons  # missing amdahl params
        assert "warp-drive" in reasons  # unknown kind
        assert "duplicate node 'a'" in reasons
        assert "unknown node 'ghost'" in reasons

    def test_paths_name_the_location(self):
        data = {
            "schema_version": 1,
            "nodes": [{"name": "a", "processing": {"kind": "bogus"}}],
            "edges": [],
        }
        (diag,) = validate_mdg_dict(data)
        assert diag.path == "$.nodes[0].processing"
        assert diag.field == "kind"

    def test_node_count_limit(self):
        data = {
            "schema_version": 1,
            "nodes": [
                {"name": f"n{i}", "processing": {"kind": "zero"}} for i in range(10)
            ],
            "edges": [],
        }
        diags = validate_mdg_dict(data, IngestLimits(max_nodes=5))
        assert any("limit is 5" in d.reason for d in diags)

    def test_edge_count_limit(self):
        data = {
            "schema_version": 1,
            "nodes": [
                {"name": "a", "processing": {"kind": "zero"}},
                {"name": "b", "processing": {"kind": "zero"}},
            ],
            "edges": [{"source": "a", "target": "b", "transfers": []}] * 10,
        }
        diags = validate_mdg_dict(data, IngestLimits(max_edges=3))
        assert any("limit is 3" in d.reason for d in diags)

    def test_bad_transfer(self):
        data = {
            "schema_version": 1,
            "nodes": [
                {"name": "a", "processing": {"kind": "zero"}},
                {"name": "b", "processing": {"kind": "zero"}},
            ],
            "edges": [
                {
                    "source": "a",
                    "target": "b",
                    "transfers": [{"length_bytes": -5, "kind": 3}],
                }
            ],
        }
        reasons = "\n".join(str(d) for d in validate_mdg_dict(data))
        assert ">= 0" in reasons
        assert "transfer-kind" in reasons


class TestLoadMdgChecked:
    def test_roundtrip(self, mdg_file):
        mdg = load_mdg_checked(mdg_file)
        assert sorted(mdg.node_names()) == sorted(
            paper_example_mdg().node_names()
        )

    def test_load_mdg_entry_point_is_hardened(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 1, "nodes": "nope"}')
        with pytest.raises(IngestError):
            load_mdg(path)

    def test_ingest_error_is_a_validation_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{]")
        with pytest.raises(ValidationError):
            load_mdg(path)

    def test_oversized_graph_rejected(self, mdg_file):
        with pytest.raises(IngestError, match="nodes"):
            load_mdg_checked(mdg_file, IngestLimits(max_nodes=1))


class TestScheduleIngestion:
    @pytest.fixture
    def schedule_file(self, tmp_path):
        machine = MachineParameters("m4", 4, TransferCostParameters.zero())
        result = compile_mdg(paper_example_mdg(), machine)
        path = tmp_path / "schedule.json"
        save_schedule(result.schedule, path)
        return path

    def test_roundtrip(self, schedule_file):
        schedule = load_schedule(schedule_file)
        schedule.validate()

    def test_checked_load_rejects_bad_entries(self, schedule_file):
        data = json.loads(schedule_file.read_text())
        data["entries"][0]["processors"] = ["zero"]
        schedule_file.write_text(json.dumps(data))
        with pytest.raises(IngestError, match="processor"):
            load_schedule_checked(schedule_file)

    def test_validate_schedule_dict_nested_mdg(self, schedule_file):
        data = json.loads(schedule_file.read_text())
        data["mdg"]["nodes"][0]["processing"] = {"kind": "bogus"}
        diags = validate_schedule_dict(data)
        assert any(d.path.startswith("$.mdg.nodes[0]") for d in diags)

    def test_truncated_schedule(self, schedule_file):
        schedule_file.write_text(schedule_file.read_text()[:-40])
        with pytest.raises(IngestError, match="not valid JSON"):
            load_schedule(schedule_file)


class TestDiagnosticFormatting:
    def test_str_with_field(self):
        d = Diagnostic("$.nodes[0]", "name", "must be a string")
        assert str(d) == "$.nodes[0].name: must be a string"

    def test_str_without_field(self):
        d = Diagnostic("$", "", "not an object")
        assert str(d) == "$: not an object"

    def test_ingest_error_message_lists_diagnostics(self):
        err = IngestError(
            "invalid input: 2 problems",
            (
                Diagnostic("$", "a", "bad"),
                Diagnostic("$", "b", "worse"),
            ),
        )
        text = str(err)
        assert "2 problems" in text
        assert "$.a: bad" in text
        assert "$.b: worse" in text
