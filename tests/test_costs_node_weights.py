"""Unit tests for node/edge weight assembly and the A_p / C_p bounds."""

import pytest

from repro.costs.node_weights import MDGCostModel
from repro.costs.processing import AmdahlProcessingCost
from repro.costs.transfer import (
    ArrayTransfer,
    TransferCostModel,
    TransferCostParameters,
    TransferKind,
)
from repro.errors import CostModelError
from repro.graph.mdg import MDG

PARAMS = TransferCostParameters(t_ss=1e-3, t_ps=1e-8, t_sr=5e-4, t_pr=1e-8, t_n=1e-9)
L = 32768.0


def two_node_mdg() -> MDG:
    mdg = MDG("pair")
    mdg.add_node("a", AmdahlProcessingCost(0.1, 1.0))
    mdg.add_node("b", AmdahlProcessingCost(0.2, 2.0))
    mdg.add_edge("a", "b", [ArrayTransfer(L, TransferKind.ROW2ROW)])
    return mdg


def fork_mdg() -> MDG:
    mdg = MDG("fork")
    mdg.add_node("root", AmdahlProcessingCost(0.1, 1.0))
    for name in ("l", "r"):
        mdg.add_node(name, AmdahlProcessingCost(0.1, 1.0))
        mdg.add_edge("root", name, [ArrayTransfer(L, TransferKind.ROW2ROW)])
    return mdg


class TestNodeWeight:
    def test_weight_includes_all_three_parts(self):
        mdg = two_node_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        alloc = {"a": 2, "b": 4}
        tm = cm.transfer_model
        transfer = mdg.edge("a", "b").transfers[0]
        expected_a = mdg.node("a").processing.cost(2) + tm.send_cost(transfer, 2, 4)
        expected_b = mdg.node("b").processing.cost(4) + tm.receive_cost(transfer, 2, 4)
        assert cm.node_weight("a", alloc) == pytest.approx(expected_a)
        assert cm.node_weight("b", alloc) == pytest.approx(expected_b)

    def test_fork_sender_pays_both_sends(self):
        mdg = fork_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        alloc = {"root": 2, "l": 2, "r": 2}
        tm = cm.transfer_model
        transfer = mdg.edge("root", "l").transfers[0]
        expected = mdg.node("root").processing.cost(2) + 2 * tm.send_cost(
            transfer, 2, 2
        )
        assert cm.node_weight("root", alloc) == pytest.approx(expected)

    def test_edge_weight_is_network_component(self):
        mdg = two_node_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        alloc = {"a": 2, "b": 4}
        edge = mdg.edge("a", "b")
        assert cm.edge_weight(edge, alloc) == pytest.approx(
            cm.transfer_model.network_cost(edge.transfers[0], 2, 4)
        )

    def test_missing_allocation_rejected(self):
        mdg = two_node_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        with pytest.raises(CostModelError, match="missing"):
            cm.processor_time_area({"a": 2})

    def test_non_positive_allocation_rejected(self):
        mdg = two_node_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        with pytest.raises(CostModelError):
            cm.processor_time_area({"a": 2, "b": 0})


class TestAggregates:
    def test_average_is_area_over_p(self):
        mdg = two_node_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        alloc = {"a": 2, "b": 4}
        assert cm.average_finish_time(alloc, 8) == pytest.approx(
            cm.processor_time_area(alloc) / 8
        )

    def test_critical_path_of_chain_is_sum(self):
        mdg = two_node_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        alloc = {"a": 2, "b": 4}
        edge = mdg.edge("a", "b")
        expected = (
            cm.node_weight("a", alloc)
            + cm.edge_weight(edge, alloc)
            + cm.node_weight("b", alloc)
        )
        assert cm.critical_path_time(alloc) == pytest.approx(expected)

    def test_fork_critical_path_takes_longer_branch(self):
        mdg = MDG("uneven")
        mdg.add_node("root", AmdahlProcessingCost(0.1, 1.0))
        mdg.add_node("fast", AmdahlProcessingCost(0.1, 0.1))
        mdg.add_node("slow", AmdahlProcessingCost(0.1, 10.0))
        mdg.add_edge("root", "fast")
        mdg.add_edge("root", "slow")
        cm = MDGCostModel(mdg, TransferCostModel(TransferCostParameters.zero()))
        alloc = {"root": 1, "fast": 1, "slow": 1}
        path = cm.critical_path_nodes(alloc)
        assert path == ["root", "slow"]

    def test_finish_times_monotone_along_edges(self):
        mdg = fork_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        alloc = {n: 2 for n in mdg.node_names()}
        finish = cm.finish_times(alloc)
        for edge in mdg.edges():
            assert finish[edge.target] > finish[edge.source]

    def test_makespan_lower_bound_is_max(self):
        mdg = two_node_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        alloc = {"a": 2, "b": 4}
        assert cm.makespan_lower_bound(alloc, 8) == pytest.approx(
            max(cm.average_finish_time(alloc, 8), cm.critical_path_time(alloc))
        )


class TestBoundWeights:
    def test_bind_matches_live_evaluation(self):
        mdg = fork_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        alloc = {n: 2 for n in mdg.node_names()}
        bound = cm.bind(alloc)
        for name in mdg.node_names():
            assert bound.node_weight(name) == pytest.approx(cm.node_weight(name, alloc))
        for edge in mdg.edges():
            assert bound.edge_weight(edge.source, edge.target) == pytest.approx(
                cm.edge_weight(edge, alloc)
            )
        assert bound.critical_path_time() == pytest.approx(cm.critical_path_time(alloc))
        assert bound.processor_time_area() == pytest.approx(
            cm.processor_time_area(alloc)
        )


class TestPosynomialWeights:
    def test_node_weight_posynomial_matches_numeric(self):
        mdg = two_node_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        proc_var = {"a": "Pa", "b": "Pb"}
        max_var = {("a", "b"): "Mab"}
        alloc = {"a": 2.0, "b": 8.0}
        values = {"Pa": 2.0, "Pb": 8.0, "Mab": 8.0}
        for name in ("a", "b"):
            poly = cm.node_weight_posynomial(name, proc_var, max_var)
            assert poly.evaluate(values) == pytest.approx(
                cm.node_weight(name, alloc)
            )

    def test_edge_posynomial_upper_bounds_numeric(self):
        mdg = two_node_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        proc_var = {"a": "Pa", "b": "Pb"}
        edge = mdg.edge("a", "b")
        poly = cm.edge_weight_posynomial(edge, proc_var)
        alloc = {"a": 2.0, "b": 8.0}
        assert poly.evaluate({"Pa": 2.0, "Pb": 8.0}) >= cm.edge_weight(edge, alloc)

    def test_edges_needing_max_var(self):
        mdg = two_node_mdg()
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        assert [(e.source, e.target) for e in cm.edges_needing_max_var()] == [
            ("a", "b")
        ]

    def test_no_max_var_without_startups(self):
        mdg = two_node_mdg()
        params = TransferCostParameters(0.0, 1e-8, 0.0, 1e-8, 0.0)
        cm = MDGCostModel(mdg, TransferCostModel(params))
        assert cm.edges_needing_max_var() == []

    def test_no_max_var_for_2d_only_edges(self):
        mdg = MDG("m")
        mdg.add_node("a", AmdahlProcessingCost(0.1, 1.0))
        mdg.add_node("b", AmdahlProcessingCost(0.1, 1.0))
        mdg.add_edge("a", "b", [ArrayTransfer(L, TransferKind.ROW2COL)])
        cm = MDGCostModel(mdg, TransferCostModel(PARAMS))
        assert cm.edges_needing_max_var() == []
