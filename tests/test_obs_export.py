"""Tests for the metrics exporters (``repro.obs.export``) and their CLI."""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main
from repro.obs.export import (
    METRIC_FORMATS,
    render_metrics,
    resolve_format,
    to_otlp_json,
    to_prometheus,
    write_metrics,
)

SNAPSHOT = {
    "counters": {"solver.evals.objective": 42.0, "9-weird name!": 1.0},
    "gauges": {"psa.queue.depth": 3.0},
    "histograms": {
        "prof.hot.solver.objective": {
            "count": 4,
            "sum": 10.0,
            "min": 1.0,
            "max": 4.0,
            "mean": 2.5,
            "p50": 2.5,
            "p95": 4.0,
        },
        "empty": {"count": 0},
    },
}

_PROM_LINE = re.compile(
    r"^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)"
    r'|[a-zA-Z_:][a-zA-Z0-9_:]*(\{quantile="0\.\d+"\})? \S+)$'
)


class TestPrometheus:
    def test_counter_gets_total_suffix_and_type_line(self):
        text = to_prometheus(SNAPSHOT)
        assert "# TYPE repro_solver_evals_objective_total counter" in text
        assert "repro_solver_evals_objective_total 42.0" in text

    def test_gauge(self):
        text = to_prometheus(SNAPSHOT)
        assert "# TYPE repro_psa_queue_depth gauge" in text
        assert "repro_psa_queue_depth 3.0" in text

    def test_histogram_becomes_summary_with_quantiles(self):
        text = to_prometheus(SNAPSHOT)
        assert "# TYPE repro_prof_hot_solver_objective summary" in text
        assert 'repro_prof_hot_solver_objective{quantile="0.5"} 2.5' in text
        assert 'repro_prof_hot_solver_objective{quantile="0.95"} 4.0' in text
        assert "repro_prof_hot_solver_objective_sum 10.0" in text
        assert "repro_prof_hot_solver_objective_count 4" in text

    def test_empty_histogram_emits_no_quantiles(self):
        text = to_prometheus(SNAPSHOT)
        assert 'repro_empty{quantile' not in text
        assert "repro_empty_count 0" in text

    def test_names_are_sanitized(self):
        text = to_prometheus(SNAPSHOT)
        for line in text.splitlines():
            assert _PROM_LINE.match(line), line

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus({}) == ""

    def test_non_finite_values(self):
        text = to_prometheus({"gauges": {"g": float("inf")}})
        assert "repro_g +Inf" in text


class TestOtlp:
    def test_resource_scope_shape(self):
        doc = to_otlp_json(SNAPSHOT, service_name="svc")
        (resource,) = doc["resourceMetrics"]
        assert resource["resource"]["attributes"][0]["value"] == {
            "stringValue": "svc"
        }
        (scope,) = resource["scopeMetrics"]
        assert scope["scope"]["name"] == "repro.obs"
        names = [m["name"] for m in scope["metrics"]]
        assert "solver.evals.objective" in names
        assert "psa.queue.depth" in names

    def test_counters_are_monotonic_cumulative_sums(self):
        doc = to_otlp_json(SNAPSHOT)
        metrics = doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        counter = next(
            m for m in metrics if m["name"] == "solver.evals.objective"
        )
        assert counter["sum"]["isMonotonic"] is True
        assert counter["sum"]["aggregationTemporality"] == 2
        assert counter["sum"]["dataPoints"] == [{"asDouble": 42.0}]

    def test_histograms_are_summaries_with_quantiles(self):
        doc = to_otlp_json(SNAPSHOT)
        metrics = doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        summary = next(
            m for m in metrics if m["name"] == "prof.hot.solver.objective"
        )
        (point,) = summary["summary"]["dataPoints"]
        assert point["count"] == 4
        assert point["sum"] == 10.0
        assert {"quantile": 0.95, "value": 4.0} in point["quantileValues"]

    def test_json_serializable(self):
        json.dumps(to_otlp_json(SNAPSHOT))


class TestFormatResolution:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("m.prom", "prometheus"),
            ("m.TXT", "prometheus"),
            ("m.otlp", "otlp"),
            ("m.json", "json"),
            ("m", "json"),
        ],
    )
    def test_auto_by_extension(self, path, expected):
        assert resolve_format(path, "auto") == expected

    def test_explicit_format_wins_over_extension(self):
        assert resolve_format("m.prom", "json") == "json"

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics format"):
            resolve_format("m.json", "xml")
        assert "xml" not in METRIC_FORMATS

    def test_render_metrics_json_round_trips(self):
        assert json.loads(render_metrics(SNAPSHOT, "json")) == SNAPSHOT


class TestWriteMetrics:
    def test_write_prometheus_by_extension(self, tmp_path):
        path = tmp_path / "metrics.prom"
        assert write_metrics(path, SNAPSHOT) == "prometheus"
        assert path.read_text().startswith("# TYPE ")

    def test_write_otlp(self, tmp_path):
        path = tmp_path / "metrics.otlp"
        assert write_metrics(path, SNAPSHOT) == "otlp"
        assert "resourceMetrics" in json.loads(path.read_text())

    def test_write_default_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        assert write_metrics(path, SNAPSHOT) == "json"
        assert json.loads(path.read_text()) == SNAPSHOT


class TestCli:
    def test_metrics_out_prometheus(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "compile",
                    "--program",
                    "complex",
                    "--n",
                    "16",
                    "-p",
                    "4",
                    "--metrics-out",
                    str(out),
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert f"wrote metrics (prometheus) to {out}" in stdout
        text = out.read_text()
        assert "# TYPE " in text
        assert "repro_" in text

    def test_metrics_format_flag_overrides_extension(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "compile",
                    "--program",
                    "complex",
                    "--n",
                    "16",
                    "-p",
                    "4",
                    "--metrics-out",
                    str(out),
                    "--metrics-format",
                    "otlp",
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert "wrote metrics (otlp)" in stdout
        assert "resourceMetrics" in json.loads(out.read_text())
