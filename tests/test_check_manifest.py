"""Batch manifest pass family (BATCH001-BATCH002)."""

from __future__ import annotations

import json

from repro.check import Severity, check_file
from repro.check.manifest_passes import is_batch_manifest
from repro.cli import main


def write(tmp_path, doc, name="manifest.json"):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


def findings(report, rule_id):
    return [f for f in report.findings if f.rule_id == rule_id]


def test_is_batch_manifest_discriminates():
    assert is_batch_manifest({"jobs": []})
    assert not is_batch_manifest({"nodes": [], "jobs": []})  # MDG-shaped
    assert not is_batch_manifest({"jobs": "nope"})
    assert not is_batch_manifest([1, 2])


def test_valid_manifest_is_clean(tmp_path):
    path = write(
        tmp_path,
        {"schema_version": 1,
         "jobs": [{"id": "a", "program": "complex", "n": 16}]},
    )
    report = check_file(path)
    assert not report.findings


def test_missing_graph_file_is_batch001(tmp_path):
    path = write(tmp_path, {"jobs": [{"id": "a", "graph": "nope.json"}]})
    report = check_file(path)
    (finding,) = findings(report, "BATCH001")
    assert finding.severity is Severity.ERROR
    assert "file not found" in finding.message
    assert "jobs[0]" in finding.location


def test_malformed_entries_are_batch002(tmp_path):
    path = write(
        tmp_path,
        {"jobs": [
            {"id": "a", "program": "complex", "graph": "also.json"},
            {"id": "a", "program": "fft2d", "frobnicate": 1},
        ]},
    )
    report = check_file(path)
    found = findings(report, "BATCH002")
    assert len(found) >= 3  # both-sources, duplicate id, unknown field
    assert all(f.severity is Severity.ERROR for f in found)


def test_graph_paths_resolve_relative_to_manifest(tmp_path):
    from repro.graph.generators import layered_random_mdg
    from repro.graph.serialization import save_mdg

    (tmp_path / "graphs").mkdir()
    save_mdg(layered_random_mdg(2, 2, seed=7), tmp_path / "graphs" / "g.json")
    path = write(
        tmp_path,
        {"jobs": [{"id": "g", "graph": "graphs/g.json", "processors": 8}]},
    )
    assert not check_file(path).findings


def test_cli_check_flags_bad_manifest(tmp_path, capsys):
    path = write(tmp_path, {"jobs": [{"id": "a", "graph": "missing.json"}]})
    status = main(["check", str(path)])
    out = capsys.readouterr().out
    assert status != 0
    assert "BATCH001" in out


def test_batch_rules_are_listed(capsys):
    main(["check", "--list-rules"])
    out = capsys.readouterr().out
    assert "BATCH001" in out and "BATCH002" in out
