"""Unit tests for Chrome Trace Event export."""

import json

import pytest

from repro.sim.chrome_trace import save_chrome_trace, trace_to_chrome_json
from repro.sim.trace import ExecutionTrace, TraceEvent


@pytest.fixture
def trace():
    t = ExecutionTrace()
    t.add(TraceEvent(0, "compute", "a", 0.0, 1.5))
    t.add(TraceEvent(0, "send", "a", 1.5, 1.6, detail="a->b"))
    t.add(TraceEvent(1, "wait", "b", 0.0, 1.6, detail="recv a->b"))
    t.add(TraceEvent(1, "recv", "b", 1.6, 1.8, detail="a->b"))
    return t


class TestChromeTrace:
    def test_valid_json(self, trace):
        document = json.loads(trace_to_chrome_json(trace))
        assert len(document["traceEvents"]) == 4

    def test_event_fields(self, trace):
        events = json.loads(trace_to_chrome_json(trace))["traceEvents"]
        compute = events[0]
        assert compute["ph"] == "X"
        assert compute["name"] == "a:compute"
        assert compute["ts"] == 0.0
        assert compute["dur"] == pytest.approx(1.5e6)  # microseconds
        assert compute["tid"] == 0

    def test_categories(self, trace):
        events = json.loads(trace_to_chrome_json(trace))["traceEvents"]
        categories = {e["name"]: e["cat"] for e in events}
        assert categories["a:compute"] == "compute"
        assert categories["a:send"] == "message"
        assert categories["b:wait"] == "idle"

    def test_detail_in_args(self, trace):
        events = json.loads(trace_to_chrome_json(trace))["traceEvents"]
        send = [e for e in events if e["name"] == "a:send"][0]
        assert send["args"]["detail"] == "a->b"

    def test_machine_name_recorded(self, trace):
        document = json.loads(trace_to_chrome_json(trace, machine_name="CM-5"))
        assert document["otherData"]["machine"] == "CM-5"

    def test_save_to_file(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_chrome_trace(trace, path)
        assert json.loads(path.read_text())["traceEvents"]

    def test_real_simulation_exports(self, cm5_16):
        from repro.pipeline import compile_mdg, measure
        from repro.programs import complex_matmul_program

        result = compile_mdg(complex_matmul_program(16).mdg, cm5_16)
        sim = measure(result)
        document = json.loads(trace_to_chrome_json(sim.trace))
        assert len(document["traceEvents"]) == len(sim.trace)
        # All events on valid processor tracks.
        assert all(0 <= e["tid"] < 16 for e in document["traceEvents"])
