"""Unit tests for Chrome Trace Event export."""

import json

import pytest

from repro.sim.chrome_trace import (
    PIPELINE_PID,
    SIMULATION_PID,
    save_chrome_trace,
    trace_to_chrome_json,
)
from repro.sim.trace import ExecutionTrace, TraceEvent


@pytest.fixture
def trace():
    t = ExecutionTrace()
    t.add(TraceEvent(0, "compute", "a", 0.0, 1.5))
    t.add(TraceEvent(0, "send", "a", 1.5, 1.6, detail="a->b"))
    t.add(TraceEvent(1, "wait", "b", 0.0, 1.6, detail="recv a->b"))
    t.add(TraceEvent(1, "recv", "b", 1.6, 1.8, detail="a->b"))
    return t


def complete_events(document):
    return [e for e in document["traceEvents"] if e["ph"] == "X"]


def metadata_events(document):
    return [e for e in document["traceEvents"] if e["ph"] == "M"]


class TestChromeTrace:
    def test_valid_json(self, trace):
        document = json.loads(trace_to_chrome_json(trace))
        assert len(complete_events(document)) == 4

    def test_event_fields(self, trace):
        events = complete_events(json.loads(trace_to_chrome_json(trace)))
        compute = events[0]
        assert compute["ph"] == "X"
        assert compute["name"] == "a:compute"
        assert compute["ts"] == 0.0
        assert compute["dur"] == pytest.approx(1.5e6)  # microseconds
        assert compute["tid"] == 0

    def test_categories(self, trace):
        events = complete_events(json.loads(trace_to_chrome_json(trace)))
        categories = {e["name"]: e["cat"] for e in events}
        assert categories["a:compute"] == "compute"
        assert categories["a:send"] == "message"
        assert categories["b:wait"] == "idle"

    def test_detail_in_args(self, trace):
        events = complete_events(json.loads(trace_to_chrome_json(trace)))
        send = [e for e in events if e["name"] == "a:send"][0]
        assert send["args"]["detail"] == "a->b"

    def test_machine_name_recorded(self, trace):
        document = json.loads(trace_to_chrome_json(trace, machine_name="CM-5"))
        assert document["otherData"]["machine"] == "CM-5"

    def test_save_to_file(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_chrome_trace(trace, path)
        assert json.loads(path.read_text())["traceEvents"]

    def test_real_simulation_exports(self, cm5_16):
        from repro.pipeline import compile_mdg, measure
        from repro.programs import complex_matmul_program

        result = compile_mdg(complex_matmul_program(16).mdg, cm5_16)
        sim = measure(result)
        document = json.loads(trace_to_chrome_json(sim.trace))
        assert len(complete_events(document)) == len(sim.trace)
        # All events on valid processor tracks.
        assert all(0 <= e["tid"] < 16 for e in complete_events(document))


class TestTrackMetadata:
    def test_process_name(self, trace):
        document = json.loads(trace_to_chrome_json(trace, machine_name="CM-5"))
        names = [
            e
            for e in metadata_events(document)
            if e["name"] == "process_name" and e["pid"] == SIMULATION_PID
        ]
        assert len(names) == 1
        assert names[0]["args"]["name"] == "simulated CM-5"

    def test_thread_names_cover_every_processor(self, trace):
        document = json.loads(trace_to_chrome_json(trace))
        labels = {
            e["tid"]: e["args"]["name"]
            for e in metadata_events(document)
            if e["name"] == "thread_name" and e["pid"] == SIMULATION_PID
        }
        assert labels == {0: "proc 0", 1: "proc 1"}


class TestPipelineTrack:
    def test_no_pipeline_track_by_default(self, trace):
        document = json.loads(trace_to_chrome_json(trace))
        assert all(e["pid"] == SIMULATION_PID for e in document["traceEvents"])

    def test_spans_on_second_pid(self, trace):
        from repro import obs

        telemetry = obs.Telemetry()
        with obs.use(telemetry):
            with obs.span("compile", nodes=3):
                with obs.span("allocate"):
                    pass
        document = json.loads(
            trace_to_chrome_json(trace, pipeline_spans=telemetry.spans)
        )
        pipeline = [
            e
            for e in complete_events(document)
            if e["pid"] == PIPELINE_PID
        ]
        assert {e["name"] for e in pipeline} == {"compile", "allocate"}
        by_name = {e["name"]: e for e in pipeline}
        assert by_name["allocate"]["args"]["depth"] == 1
        assert by_name["allocate"]["args"]["parent"] == "compile"
        assert by_name["compile"]["args"]["nodes"] == 3
        # Both tracks coexist and are labelled.
        labels = {
            (e["pid"], e["name"]): e["args"]["name"]
            for e in metadata_events(document)
        }
        assert labels[(PIPELINE_PID, "process_name")] == "compiler pipeline"
        assert (SIMULATION_PID, "process_name") in labels
