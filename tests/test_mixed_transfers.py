"""Edges carrying several arrays of mixed 1D/2D kinds.

Section 4: "multiple arrays may be transferred [and] there may be both
type of transfers occurring between a given pair of nodes... Our actual
implementation uses an extended form of these functions." These tests
exercise exactly that extended form through every layer: cost assembly,
the convex formulation, the PSA, codegen and the simulator.
"""

import pytest

from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.codegen.mpmd import generate_mpmd_program
from repro.codegen.program import RecvOp, SendOp
from repro.costs.node_weights import MDGCostModel
from repro.costs.transfer import ArrayTransfer, TransferCostParameters, TransferKind
from repro.graph.mdg import MDG
from repro.graph.builders import amdahl
from repro.machine.parameters import MachineParameters
from repro.scheduling.psa import prioritized_schedule
from repro.sim.engine import MachineSimulator

MACHINE = MachineParameters(
    "mixed",
    8,
    TransferCostParameters(t_ss=1e-4, t_ps=5e-9, t_sr=8e-5, t_pr=4e-9, t_n=1e-9),
)


def mixed_edge_mdg() -> MDG:
    """Two nodes, one edge carrying a 1D array, a 2D array, and a second
    (smaller) 1D array — the paper's fully general case."""
    mdg = MDG("mixed")
    mdg.add_node("producer", amdahl(0.1, 0.5))
    mdg.add_node("consumer", amdahl(0.1, 0.8))
    mdg.add_edge(
        "producer",
        "consumer",
        [
            ArrayTransfer(32768.0, TransferKind.ROW2ROW, "big-1d"),
            ArrayTransfer(16384.0, TransferKind.ROW2COL, "mid-2d"),
            ArrayTransfer(8192.0, TransferKind.COL2COL, "small-1d"),
        ],
    )
    return mdg


class TestCostAssembly:
    def test_edge_costs_sum_over_arrays(self):
        mdg = mixed_edge_mdg()
        cm = MDGCostModel(mdg, MACHINE.transfer_model())
        tm = cm.transfer_model
        transfers = mdg.edge("producer", "consumer").transfers
        alloc = {"producer": 2, "consumer": 4}
        expected_send = sum(tm.send_cost(t, 2, 4) for t in transfers)
        weight = cm.node_weight("producer", alloc)
        assert weight == pytest.approx(
            mdg.node("producer").processing.cost(2) + expected_send
        )

    def test_edge_weight_sums_network_components(self):
        mdg = mixed_edge_mdg()
        cm = MDGCostModel(mdg, MACHINE.transfer_model())
        tm = cm.transfer_model
        transfers = mdg.edge("producer", "consumer").transfers
        alloc = {"producer": 2, "consumer": 4}
        expected = sum(tm.network_cost(t, 2, 4) for t in transfers)
        assert cm.edge_weight(mdg.edge("producer", "consumer"), alloc) == (
            pytest.approx(expected)
        )

    def test_max_var_needed_for_the_1d_parts(self):
        mdg = mixed_edge_mdg()
        cm = MDGCostModel(mdg, MACHINE.transfer_model())
        assert [(e.source, e.target) for e in cm.edges_needing_max_var()] == [
            ("producer", "consumer")
        ]

    def test_posynomial_matches_numeric_on_mixed_edge(self):
        mdg = mixed_edge_mdg()
        cm = MDGCostModel(mdg, MACHINE.transfer_model())
        proc_var = {"producer": "Pp", "consumer": "Pc"}
        max_var = {("producer", "consumer"): "M"}
        poly = cm.node_weight_posynomial("producer", proc_var, max_var)
        alloc = {"producer": 2.0, "consumer": 4.0}
        values = {"Pp": 2.0, "Pc": 4.0, "M": 4.0}
        assert poly.evaluate(values) == pytest.approx(
            cm.node_weight("producer", alloc)
        )


class TestFullPipelineOnMixedEdges:
    def test_solver_handles_mixed_edge(self):
        mdg = mixed_edge_mdg().normalized()
        allocation = solve_allocation(
            mdg, MACHINE, ConvexSolverOptions(multistart_targets=(2.0,))
        )
        assert allocation.phi > 0
        # Conservative relaxation: Phi >= exact cost at the solution.
        cm = MDGCostModel(mdg, MACHINE.transfer_model())
        assert allocation.phi >= cm.makespan_lower_bound(
            allocation.processors, 8
        ) * (1 - 1e-6)

    def test_schedule_and_simulate(self):
        mdg = mixed_edge_mdg().normalized()
        allocation = solve_allocation(
            mdg, MACHINE, ConvexSolverOptions(multistart_targets=(2.0,))
        )
        schedule = prioritized_schedule(mdg, allocation.processors, MACHINE)
        schedule.validate(schedule.info["weights"])
        program = generate_mpmd_program(schedule, MACHINE)
        result = MachineSimulator().run(program, record_trace=False)
        assert result.makespan <= schedule.makespan * (1 + 1e-9)

    def test_codegen_aggregates_mixed_transfers_into_one_op_pair(self):
        """One edge -> one SendOp/RecvOp per participating processor,
        whose costs are the sums over all three arrays."""
        mdg = mixed_edge_mdg().normalized()
        allocation = {"producer": 2.0, "consumer": 4.0}
        schedule = prioritized_schedule(mdg, allocation, MACHINE)
        program = generate_mpmd_program(schedule, MACHINE)
        tm = MACHINE.transfer_model()
        transfers = mdg.edge("producer", "consumer").transfers
        widths = schedule.allocation()
        p_i, p_j = widths["producer"], widths["consumer"]

        sends = [
            op
            for _q, op in program.instructions()
            if isinstance(op, SendOp) and op.edge == ("producer", "consumer")
        ]
        assert len(sends) == p_i
        expected_send = sum(tm.send_cost(t, p_i, p_j) for t in transfers)
        assert sends[0].startup_cost + sends[0].byte_cost == pytest.approx(
            expected_send
        )

        recvs = [
            op
            for _q, op in program.instructions()
            if isinstance(op, RecvOp) and op.edge == ("producer", "consumer")
        ]
        assert len(recvs) == p_j
        expected_delay = sum(tm.network_cost(t, p_i, p_j) for t in transfers)
        assert recvs[0].network_delay == pytest.approx(expected_delay)
