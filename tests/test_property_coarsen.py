"""Property tests for bottom-up coarsening on random MDGs."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.coarsen import coarsen_mdg, expand_allocation
from repro.graph.generators import layered_random_mdg, random_mdg

SETTINGS = dict(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

graphs = st.one_of(
    st.builds(
        lambda seed, layers, width: layered_random_mdg(layers, width, seed=seed),
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=4),
    ),
    st.builds(
        lambda seed, n: random_mdg(n, seed=seed, edge_probability=0.3),
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=2, max_value=12),
    ),
)


@settings(**SETTINGS)
@given(graphs, st.integers(min_value=1, max_value=8))
def test_coarse_graph_is_valid_dag(mdg, target):
    result = coarsen_mdg(mdg, target)
    result.coarse.validate()  # raises CycleError on any broken merge


@settings(**SETTINGS)
@given(graphs, st.integers(min_value=1, max_value=8))
def test_members_partition_original_nodes(mdg, target):
    result = coarsen_mdg(mdg, target)
    flattened = sorted(
        name for group in result.members.values() for name in group
    )
    assert flattened == sorted(mdg.node_names())


@settings(**SETTINGS)
@given(graphs, st.integers(min_value=1, max_value=8))
def test_serial_work_conserved(mdg, target):
    result = coarsen_mdg(mdg, target)
    before = sum(node.processing.cost(1.0) for node in mdg.nodes())
    after = sum(node.processing.cost(1.0) for node in result.coarse.nodes())
    assert after == pytest.approx(before, rel=1e-9)


@settings(**SETTINGS)
@given(graphs, st.integers(min_value=1, max_value=8))
def test_communication_conserved_or_internalized(mdg, target):
    result = coarsen_mdg(mdg, target)
    before = sum(e.total_bytes for e in mdg.edges())
    after = sum(e.total_bytes for e in result.coarse.edges())
    assert after + result.internalized_bytes == pytest.approx(before)
    assert result.internalized_bytes >= 0.0


@settings(**SETTINGS)
@given(graphs, st.integers(min_value=1, max_value=8))
def test_expanded_allocation_covers_all_nodes(mdg, target):
    result = coarsen_mdg(mdg, target)
    coarse_alloc = {name: 2.0 for name in result.coarse.node_names()}
    fine = expand_allocation(result, coarse_alloc)
    assert set(fine) == set(mdg.node_names())
    assert all(v == 2.0 for v in fine.values())


@settings(**SETTINGS)
@given(graphs)
def test_idempotent_at_current_size(mdg):
    result = coarsen_mdg(mdg, mdg.n_nodes)
    assert result.coarse.n_nodes == mdg.n_nodes
    assert result.internalized_bytes == 0.0
