"""Execute the documentation's Python snippets so the docs cannot rot.

Every fenced ``python`` block in docs/userguide.md runs in one shared
namespace, in order, except blocks that reference placeholder data the
reader is meant to supply (detected by name). README's quickstart block
runs too.
"""

import pathlib
import re

import pytest

DOCS = pathlib.Path(__file__).parent.parent / "docs"
README = pathlib.Path(__file__).parent.parent / "README.md"

#: Names that mark a snippet as illustrative-only (reader-supplied data).
PLACEHOLDERS = ("measured_times", "my-cluster")

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_blocks(path: pathlib.Path) -> list[str]:
    return _FENCE.findall(path.read_text())


def runnable(block: str) -> bool:
    return not any(marker in block for marker in PLACEHOLDERS)


class TestUserGuideSnippets:
    def test_guide_has_snippets(self):
        blocks = extract_blocks(DOCS / "userguide.md")
        assert len(blocks) >= 8

    def test_snippets_execute_in_order(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # snippets write graph.json etc.
        blocks = extract_blocks(DOCS / "userguide.md")
        # The machine-description block is illustrative (placeholder
        # constants); seed the name it would have defined.
        from repro.machine.presets import cm5

        namespace: dict = {"machine": cm5(8)}
        executed = 0
        for block in blocks:
            if not runnable(block):
                continue
            # Shrink the expensive bits: the guide uses paper-size
            # programs; swap for small ones with the same API surface.
            code = block.replace("strassen_program(128)", "strassen_program(16)")
            code = code.replace('prog.declare("A", 128, 128)', 'prog.declare("A", 16, 16)')
            code = code.replace('.declare("B", 128, 128)', '.declare("B", 16, 16)')
            code = code.replace('.declare("C", 128, 128)', '.declare("C", 16, 16)')
            code = code.replace("cm5(32)", "cm5(8)")
            # The batch-sweep block: fewer jobs, inline executor (the
            # suite may run on a single-core box).
            code = code.replace("range(20)", "range(4)")
            code = code.replace("workers=4", "workers=0")
            exec(compile(code, "<userguide>", "exec"), namespace)  # noqa: S102
            executed += 1
        assert executed >= 8


class TestReadmeQuickstart:
    def test_quickstart_block_executes(self):
        blocks = [b for b in extract_blocks(README) if "compile_mdg" in b]
        assert blocks, "README must contain the quickstart block"
        code = blocks[0].replace("complex_matmul_program(64)", "complex_matmul_program(16)")
        code = code.replace("cm5(32)", "cm5(8)")
        namespace: dict = {}
        exec(compile(code, "<readme>", "exec"), namespace)  # noqa: S102
