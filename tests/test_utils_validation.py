"""Unit tests for repro.utils.validation."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_non_negative,
    check_path_component,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_accepts_integer_input(self):
        assert check_positive("x", 3) == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive("x", -1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_positive("x", math.nan)

    def test_rejects_infinity(self):
        with pytest.raises(ValidationError, match="finite"):
            check_positive("x", math.inf)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError, match="real number"):
            check_positive("x", "three")

    def test_error_names_parameter(self):
        with pytest.raises(ValidationError, match="tau"):
            check_positive("tau", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_accepts_positive(self):
        assert check_non_negative("x", 7.0) == 7.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match=">= 0"):
            check_non_negative("x", -1e-12)


class TestCheckInRange:
    def test_inclusive_endpoints(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_rejects_endpoints(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)
        with pytest.raises(ValidationError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 1.5, 0.0, 1.0)


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer("n", 5) == 5

    def test_accepts_integral_float(self):
        assert check_integer("n", 5.0) == 5

    def test_accepts_numpy_integer(self):
        assert check_integer("n", np.int64(7)) == 7

    def test_rejects_fractional_float(self):
        with pytest.raises(ValidationError):
            check_integer("n", 5.5)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="bool"):
            check_integer("n", True)

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_integer("n", "5")

    def test_enforces_minimum(self):
        with pytest.raises(ValidationError, match=">= 1"):
            check_integer("n", 0, minimum=1)

    def test_minimum_boundary_ok(self):
        assert check_integer("n", 1, minimum=1) == 1


class TestCheckProbability:
    def test_endpoints(self):
        assert check_probability("a", 0.0) == 0.0
        assert check_probability("a", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_probability("a", 1.0001)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_probability("a", -0.1)


class TestCheckPathComponent:
    def test_accepts_hex_keys_and_kinds(self):
        assert check_path_component("key", "deadbeef01") == "deadbeef01"
        assert check_path_component("kind", "allocation") == "allocation"

    def test_rejects_non_string(self):
        with pytest.raises(ValidationError, match="must be a string"):
            check_path_component("key", 42)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_path_component("key", "")

    @pytest.mark.parametrize("value", ["../x", "a/b", "a\\b", ".", ".."])
    def test_rejects_traversal(self, value):
        with pytest.raises(ValidationError, match="traverse"):
            check_path_component("key", value)

    def test_rejects_dots(self):
        with pytest.raises(ValidationError, match="'\\.'"):
            check_path_component("key", "a.json")

    def test_rejects_control_characters(self):
        with pytest.raises(ValidationError, match="control"):
            check_path_component("key", "a\x00b")

    def test_rejects_overlong(self):
        with pytest.raises(ValidationError, match="too long"):
            check_path_component("key", "k" * 201)
