"""Unit tests for multi-level recursive Strassen and the block kernels."""

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.programs.strassen_recursive import strassen_recursive_program
from repro.runtime.distribution import DistributedArray, RowBlock
from repro.runtime.executor import ValueExecutor
from repro.runtime.kernels import Assemble2x2, Extract
from repro.runtime.verify import sequential_reference, verify_against_reference


class TestExtractKernel:
    def test_serial(self):
        x = np.arange(64, dtype=float).reshape(8, 8)
        kernel = Extract(8, 8, 2, 4, 3, 4)
        assert np.array_equal(kernel.serial({"x": x}), x[2:5, 4:8])

    @pytest.mark.parametrize("group", [1, 2, 3, 5])
    def test_local_matches_serial(self, group):
        x = np.arange(100, dtype=float).reshape(10, 10)
        kernel = Extract(10, 10, 3, 1, 5, 6)
        dx = DistributedArray.from_full(x, RowBlock(10, 10, group))
        blocks = {r: kernel.local(r, {"x": dx}) for r in range(group)}
        assembled = kernel.output_distribution(group).gather(blocks)
        assert np.array_equal(assembled, x[3:8, 1:7])

    def test_out_of_bounds_rejected(self):
        with pytest.raises(DistributionError, match="exceeds"):
            Extract(8, 8, 6, 0, 4, 4)

    def test_quadrants_cover_parent(self):
        x = np.arange(36, dtype=float).reshape(6, 6)
        quads = [
            Extract(6, 6, r0, c0, 3, 3).serial({"x": x})
            for r0 in (0, 3)
            for c0 in (0, 3)
        ]
        reassembled = np.block([[quads[0], quads[1]], [quads[2], quads[3]]])
        assert np.array_equal(reassembled, x)


class TestAssembleKernel:
    @pytest.mark.parametrize("group", [1, 2, 4])
    def test_round_trip_with_extract(self, group):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(8, 8))
        quads = {}
        for name, (r0, c0) in zip(
            ("c11", "c12", "c21", "c22"), [(0, 0), (0, 4), (4, 0), (4, 4)]
        ):
            sub = x[r0 : r0 + 4, c0 : c0 + 4]
            quads[name] = DistributedArray.from_full(sub, RowBlock(4, 4, group))
        kernel = Assemble2x2(4, 4)
        blocks = {r: kernel.local(r, quads) for r in range(group)}
        assembled = kernel.output_distribution(group).gather(blocks)
        assert np.allclose(assembled, x)

    def test_serial(self):
        kernel = Assemble2x2(2, 2)
        quads = {
            "c11": np.full((2, 2), 1.0),
            "c12": np.full((2, 2), 2.0),
            "c21": np.full((2, 2), 3.0),
            "c22": np.full((2, 2), 4.0),
        }
        out = kernel.serial(quads)
        assert out[0, 0] == 1.0 and out[0, 3] == 2.0
        assert out[3, 0] == 3.0 and out[3, 3] == 4.0


class TestRecursiveProgram:
    def test_level1_structure(self):
        bundle = strassen_recursive_program(8, 1)
        # 2 inits + 8 extracts + 10 pre + 7 muls + 8 post + 1 assemble = 36.
        assert bundle.mdg.n_nodes == 36

    def test_level2_scales(self):
        bundle = strassen_recursive_program(16, 2)
        assert bundle.mdg.n_nodes == 267
        bundle.mdg.validate()

    @pytest.mark.parametrize("levels,n", [(1, 8), (2, 16)])
    def test_equals_classical_product(self, levels, n):
        bundle = strassen_recursive_program(n, levels)
        values = sequential_reference(bundle.app)
        product = values[bundle.info["product_node"]]
        assert np.allclose(product, values["A"] @ values["B"])

    def test_distributed_execution_level2(self):
        bundle = strassen_recursive_program(16, 2)
        report = ValueExecutor(bundle.app).run(
            {name: 2 for name in bundle.app.computational_nodes()}
        )
        verify_against_reference(bundle.app, report)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            strassen_recursive_program(10, 2)

    def test_schedules_at_scale(self, cm5_16):
        """267-node MDG through PSA on a uniform allocation (no solve)."""
        from repro.scheduling.psa import prioritized_schedule

        bundle = strassen_recursive_program(16, 2)
        mdg = bundle.mdg.normalized()
        schedule = prioritized_schedule(
            mdg, {name: 4.0 for name in mdg.node_names()}, cm5_16
        )
        assert schedule.is_complete
        schedule.validate(schedule.info["weights"])

    def test_allocates_level1(self, cm5_16):
        from repro.allocation.solver import ConvexSolverOptions, solve_allocation

        bundle = strassen_recursive_program(16, 1)
        allocation = solve_allocation(
            bundle.mdg.normalized(),
            cm5_16,
            ConvexSolverOptions(multistart_targets=(4.0,)),
        )
        assert allocation.phi > 0
