"""Unit tests for the schedule pass family (SCHED001-SCHED005)."""

from __future__ import annotations

from repro.check import Severity, check_mdg
from repro.check.core import Analyzer, CheckContext
from repro.check.registry import passes_for_families
from repro.costs.processing import AmdahlProcessingCost
from repro.graph.generators import paper_example_mdg
from repro.graph.mdg import MDG
from repro.graph.serialization import mdg_to_dict
from repro.scheduling.schedule import Schedule, ScheduledNode


def chain(names="ab"):
    mdg = MDG("chain")
    for n in names:
        mdg.add_node(n, AmdahlProcessingCost(0.1, 1.0))
    for a, b in zip(names, names[1:]):
        mdg.add_edge(a, b, [])
    return mdg


def run_schedule_passes(schedule):
    analyzer = Analyzer(passes_for_families(("schedule",)))
    ctx = CheckContext(
        doc=mdg_to_dict(schedule.mdg), mdg=schedule.mdg, schedule=schedule
    )
    return analyzer.run(ctx)


def place(schedule, name, start, finish, processors):
    # Bypass Schedule.add: these tests build deliberately invalid
    # schedules that add() would reject.
    schedule.entries[name] = ScheduledNode(
        name=name, start=start, finish=finish, processors=tuple(processors)
    )


def rule_ids(report):
    return {f.rule_id for f in report.findings}


class TestPrecedence:
    def test_violation(self):
        s = Schedule(chain(), total_processors=4)
        place(s, "a", 0.0, 5.0, [0])
        place(s, "b", 2.0, 4.0, [1])
        report = run_schedule_passes(s)
        (finding,) = [f for f in report.findings if f.rule_id == "SCHED001"]
        assert finding.severity is Severity.ERROR
        assert "'b'" in finding.message

    def test_back_to_back_is_legal(self):
        s = Schedule(chain(), total_processors=4)
        place(s, "a", 0.0, 5.0, [0])
        place(s, "b", 5.0, 6.0, [0])
        report = run_schedule_passes(s)
        assert "SCHED001" not in rule_ids(report)


class TestResources:
    def test_double_booked_processor(self):
        mdg = chain("ab")
        mdg.add_node("c", AmdahlProcessingCost(0.1, 1.0))
        mdg.add_edge("a", "c", [])
        s = Schedule(mdg, total_processors=4)
        place(s, "a", 0.0, 1.0, [0])
        place(s, "b", 1.0, 4.0, [2])
        place(s, "c", 2.0, 5.0, [2, 3])
        report = run_schedule_passes(s)
        (finding,) = [f for f in report.findings if f.rule_id == "SCHED002"]
        assert "processor 2" in finding.message

    def test_out_of_range_processor(self):
        s = Schedule(chain(), total_processors=2)
        place(s, "a", 0.0, 1.0, [0])
        place(s, "b", 1.0, 2.0, [7])
        report = run_schedule_passes(s)
        assert "SCHED003" in rule_ids(report)

    def test_group_wider_than_machine(self):
        s = Schedule(chain("a"), total_processors=2)
        place(s, "a", 0.0, 1.0, [0, 1, 2, 3])
        report = run_schedule_passes(s)
        findings = [f for f in report.findings if f.rule_id == "SCHED003"]
        assert any("machine has 2" in f.message for f in findings)


class TestConsistency:
    def test_makespan_below_critical_path(self):
        s = Schedule(chain(), total_processors=4)
        place(s, "a", 0.0, 5.0, [0])
        place(s, "b", 2.0, 4.0, [1])  # overlaps its predecessor
        report = run_schedule_passes(s)
        assert "SCHED004" in rule_ids(report)

    def test_idle_gap_is_note(self):
        s = Schedule(chain(), total_processors=4)
        place(s, "a", 0.0, 1.0, [0])
        place(s, "b", 5.0, 6.0, [1])
        report = run_schedule_passes(s)
        (finding,) = [f for f in report.findings if f.rule_id == "SCHED005"]
        assert finding.severity is Severity.NOTE
        assert "idles" in finding.message

    def test_tight_schedule_clean(self):
        s = Schedule(chain("abc"), total_processors=4)
        place(s, "a", 0.0, 1.0, [0])
        place(s, "b", 1.0, 2.0, [0])
        place(s, "c", 2.0, 3.0, [0])
        report = run_schedule_passes(s)
        assert not rule_ids(report)


class TestEndToEnd:
    def test_compiled_schedule_has_no_errors(self, cm5_16):
        report = check_mdg(paper_example_mdg(), cm5_16)
        assert "schedule.precedence" in report.passes_run
        assert "schedule.resources" in report.passes_run
        assert "schedule.consistency" in report.passes_run
        assert not report.has_errors

    def test_passes_noop_without_schedule(self):
        analyzer = Analyzer(passes_for_families(("schedule",)))
        report = analyzer.run(CheckContext(doc=mdg_to_dict(chain())))
        assert len(report.findings) == 0
        assert len(report.passes_run) == 3
