"""Property tests tying schedule, codegen, and simulator together."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.codegen.mpmd import generate_mpmd_program
from repro.codegen.program import RecvOp, SendOp
from repro.costs.transfer import TransferCostParameters
from repro.graph.generators import layered_random_mdg
from repro.machine.fidelity import HardwareFidelity
from repro.machine.parameters import MachineParameters
from repro.scheduling.psa import prioritized_schedule
from repro.sim.engine import MachineSimulator

FAST_SOLVER = ConvexSolverOptions(multistart_targets=(4.0,))

machines = st.builds(
    lambda p: MachineParameters(
        f"m{p}", p, TransferCostParameters(1e-4, 5e-9, 8e-5, 4e-9, 1e-9)
    ),
    st.sampled_from([4, 8, 16]),
)

graphs = st.builds(
    lambda seed, layers, width: layered_random_mdg(
        layers, width, seed=seed
    ).normalized(),
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=1, max_value=3),
)


def compile_chain(mdg, machine):
    allocation = solve_allocation(mdg, machine, FAST_SOLVER)
    schedule = prioritized_schedule(mdg, allocation.processors, machine)
    program = generate_mpmd_program(schedule, machine)
    return schedule, program


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graphs, machines)
def test_generated_programs_never_deadlock(mdg, machine):
    _, program = compile_chain(mdg, machine)
    result = MachineSimulator().run(program, record_trace=False)
    assert result.makespan >= 0.0


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graphs, machines)
def test_ideal_simulation_bounded_by_schedule(mdg, machine):
    """Self-timed execution of the generated program can only beat the
    schedule's conservative prediction, never exceed it."""
    schedule, program = compile_chain(mdg, machine)
    result = MachineSimulator().run(program, record_trace=False)
    assert result.makespan <= schedule.makespan * (1 + 1e-9)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graphs, machines)
def test_simulation_at_least_critical_compute_path(mdg, machine):
    """The simulated makespan can never undercut the pure compute time of
    the longest chain at the given allocation (sanity lower bound)."""
    schedule, program = compile_chain(mdg, machine)
    result = MachineSimulator().run(program, record_trace=False)
    allocation = schedule.allocation()
    from repro.graph.analysis import longest_path_lengths

    compute_path = max(
        longest_path_lengths(
            mdg,
            node_weight=lambda n: mdg.node(n).processing.cost(allocation[n]),
        ).values()
    )
    assert result.makespan >= compute_path * (1 - 1e-9)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graphs, machines)
def test_nonideal_fidelity_only_slows_down(mdg, machine):
    """Curvature and serialization add cost; with zero jitter the noisy
    run is deterministically at least as slow as the ideal one."""
    _, program = compile_chain(mdg, machine)
    ideal = MachineSimulator().run(program, record_trace=False).makespan
    slow = MachineSimulator(
        HardwareFidelity(compute_curvature=0.1, startup_serialization=0.5)
    ).run(program, record_trace=False).makespan
    assert slow >= ideal * (1 - 1e-9)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graphs, machines)
def test_message_matching_is_complete(mdg, machine):
    """Every edge's sends and receives pair up across the program."""
    _, program = compile_chain(mdg, machine)
    sends = {}
    recvs = {}
    for _, op in program.instructions():
        if isinstance(op, SendOp):
            sends[op.edge] = sends.get(op.edge, 0) + 1
        elif isinstance(op, RecvOp):
            recvs[op.edge] = recvs.get(op.edge, 0) + 1
    assert set(sends) == set(recvs)
    for edge in sends:
        assert sends[edge] == len(program.senders[edge])
        assert recvs[edge] == len(program.receivers[edge])
