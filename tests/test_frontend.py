"""Unit tests for the loop-nest frontend (IR, dependences, lowering)."""

import pytest

from repro.costs.transfer import TransferKind
from repro.errors import FrontendError
from repro.frontend.dependence import Dependence, flow_dependences
from repro.frontend.ir import ArrayDecl, LoopNest, LoopProgram
from repro.frontend.lowering import KIND_REGISTRY, lower_to_mdg


def complex_mm_source() -> LoopProgram:
    """The ComplexMM program written as source, not as a graph."""
    prog = LoopProgram("ccm")
    for name in ("Ar", "Ai", "Br", "Bi", "T1", "T2", "T3", "T4", "Cr", "Ci"):
        prog.declare(name, 64, 64)
    prog.loop("iAr", "matinit", writes="Ar")
    prog.loop("iAi", "matinit", writes="Ai")
    prog.loop("iBr", "matinit", writes="Br")
    prog.loop("iBi", "matinit", writes="Bi")
    prog.loop("m1", "matmul", writes="T1", reads=("Ar", "Br"))
    prog.loop("m2", "matmul", writes="T2", reads=("Ai", "Bi"))
    prog.loop("m3", "matmul", writes="T3", reads=("Ar", "Bi"))
    prog.loop("m4", "matmul", writes="T4", reads=("Ai", "Br"))
    prog.loop("sub", "matsub", writes="Cr", reads=("T1", "T2"))
    prog.loop("add", "matadd", writes="Ci", reads=("T3", "T4"))
    return prog


class TestIR:
    def test_declare_twice_rejected(self):
        prog = LoopProgram("p").declare("A", 4, 4)
        with pytest.raises(FrontendError, match="twice"):
            prog.declare("A", 4, 4)

    def test_loop_twice_rejected(self):
        prog = LoopProgram("p").declare("A", 4, 4)
        prog.loop("l", "matinit", writes="A")
        with pytest.raises(FrontendError, match="twice"):
            prog.loop("l", "matinit", writes="A")

    def test_undeclared_array_rejected(self):
        prog = LoopProgram("p")
        with pytest.raises(FrontendError, match="undeclared"):
            prog.loop("l", "matinit", writes="ghost")

    def test_in_place_update_rejected(self):
        with pytest.raises(FrontendError, match="fresh output"):
            LoopNest("l", "matadd", writes="A", reads=("A", "B"))

    def test_column_access_must_be_read(self):
        with pytest.raises(FrontendError, match="column_access"):
            LoopNest("l", "matmul", writes="C", reads=("A",), column_access={"B"})

    def test_read_before_write_rejected(self):
        prog = LoopProgram("p").declare("A", 4, 4).declare("B", 4, 4)
        prog.loop("use", "matadd", writes="B", reads=("A", "A"))
        with pytest.raises(FrontendError, match="before any loop"):
            prog.validate()

    def test_array_decl_bytes(self):
        assert ArrayDecl("A", 64, 64).total_bytes == 32768
        assert ArrayDecl("A", 8, 8, element_bytes=4).total_bytes == 256


class TestDependences:
    def test_flow_edges(self):
        deps = flow_dependences(complex_mm_source())
        flow = {(d.source, d.target) for d in deps if d.kind == "flow"}
        assert ("iAr", "m1") in flow
        assert ("m1", "sub") in flow
        assert ("m2", "sub") in flow
        assert len(flow) == 12  # 8 init->mul + 4 mul->combine

    def test_duplicate_reads_collapse(self):
        prog = LoopProgram("p").declare("A", 4, 4).declare("B", 4, 4)
        prog.loop("w", "matinit", writes="A")
        prog.loop("r", "matadd", writes="B", reads=("A", "A"))
        deps = flow_dependences(prog)
        assert deps == [Dependence("w", "r", "A", "flow")]

    def test_output_dependence(self):
        prog = LoopProgram("p").declare("A", 4, 4)
        prog.loop("w1", "matinit", writes="A")
        prog.loop("w2", "matinit", writes="A")
        deps = flow_dependences(prog)
        assert Dependence("w1", "w2", "", "output") in deps

    def test_last_writer_wins(self):
        prog = LoopProgram("p").declare("A", 4, 4).declare("B", 4, 4)
        prog.loop("w1", "matinit", writes="A")
        prog.loop("w2", "matinit", writes="A")
        prog.loop("r", "matadd", writes="B", reads=("A", "A"))
        flow = [
            d for d in flow_dependences(prog) if d.kind == "flow" and d.target == "r"
        ]
        assert flow == [Dependence("w2", "r", "A", "flow")]


class TestLowering:
    def test_reproduces_complex_mm_topology(self):
        mdg = lower_to_mdg(complex_mm_source())
        mdg.validate()
        assert mdg.n_nodes == 10
        assert mdg.n_edges == 12
        assert set(mdg.predecessors("sub")) == {"m1", "m2"}

    def test_cost_models_from_registry(self):
        mdg = lower_to_mdg(complex_mm_source())
        # m1 is a matmul on 64x64: Table 1 constants.
        assert mdg.node("m1").processing.tau == pytest.approx(298.47e-3)
        assert mdg.node("add").processing.tau == pytest.approx(3.73e-3)

    def test_transfer_sizes_from_declarations(self):
        mdg = lower_to_mdg(complex_mm_source())
        transfers = mdg.edge("iAr", "m1").transfers
        assert len(transfers) == 1
        assert transfers[0].length_bytes == 32768.0
        assert transfers[0].label == "Ar"

    def test_column_access_gives_2d_transfer(self):
        prog = LoopProgram("p").declare("A", 8, 8).declare("B", 8, 8)
        prog.loop("w", "matinit", writes="A")
        prog.loop("t", "transform", writes="B", reads=("A",), column_access={"A"})
        mdg = lower_to_mdg(prog)
        assert mdg.edge("w", "t").transfers[0].kind == TransferKind.ROW2COL

    def test_unknown_kind_rejected(self):
        prog = LoopProgram("p").declare("A", 4, 4)
        prog.loop("w", "fft", writes="A")
        with pytest.raises(FrontendError, match="unknown kind"):
            lower_to_mdg(prog)

    def test_registry_extensible(self):
        from repro.costs.processing import AmdahlProcessingCost

        KIND_REGISTRY["custom"] = lambda r, c: AmdahlProcessingCost(0.5, 1.0)
        try:
            prog = LoopProgram("p").declare("A", 4, 4)
            prog.loop("w", "custom", writes="A")
            mdg = lower_to_mdg(prog)
            assert mdg.node("w").processing.alpha == 0.5
        finally:
            del KIND_REGISTRY["custom"]

    def test_lowered_graph_allocates_and_schedules(self, cm5_16):
        """The whole chain: source -> MDG -> allocation -> schedule."""
        from repro.pipeline import compile_mdg

        mdg = lower_to_mdg(complex_mm_source())
        result = compile_mdg(mdg, cm5_16)
        assert result.predicted_makespan > 0
        assert result.phi is not None

    def test_output_dependence_edge_has_no_transfers(self):
        prog = LoopProgram("p").declare("A", 4, 4)
        prog.loop("w1", "matinit", writes="A")
        prog.loop("w2", "matinit", writes="A")
        mdg = lower_to_mdg(prog)
        assert mdg.edge("w1", "w2").transfers == ()
