"""Unit tests for the parallelism-profile metrics."""

import pytest

from repro.graph.metrics import parallelism_profile
from repro.programs import (
    complex_matmul_program,
    jacobi_program,
    strassen_program,
)


class TestParallelismProfile:
    def test_chain_has_no_parallelism(self):
        profile = parallelism_profile(jacobi_program(5, 32).mdg)
        assert profile.average_parallelism == pytest.approx(1.0)
        assert profile.max_width == 1

    def test_complex_mm_width(self):
        profile = parallelism_profile(complex_matmul_program(64).mdg)
        assert profile.max_width == 4  # the four multiplies
        assert profile.average_parallelism > 2.0

    def test_strassen_more_parallel_than_complex(self):
        strassen = parallelism_profile(strassen_program(128).mdg)
        complex_mm = parallelism_profile(complex_matmul_program(64).mdg)
        assert strassen.max_width >= 7  # the seven products
        assert strassen.average_parallelism > complex_mm.average_parallelism

    def test_work_equals_serial_time(self):
        from repro.analysis.metrics import serial_time

        mdg = complex_matmul_program(32).mdg
        assert parallelism_profile(mdg).work == pytest.approx(serial_time(mdg))

    def test_span_at_most_work(self):
        for bundle in (complex_matmul_program(32), strassen_program(32)):
            profile = parallelism_profile(bundle.mdg)
            assert profile.span <= profile.work + 1e-12

    def test_communication_bytes(self):
        mdg = complex_matmul_program(64).mdg
        expected = sum(t.length_bytes for e in mdg.edges() for t in e.transfers)
        assert parallelism_profile(mdg).communication_bytes == expected

    def test_dummies_excluded_from_width(self):
        mdg = complex_matmul_program(64).mdg.normalized()
        profile = parallelism_profile(mdg)
        assert profile.max_width == 4

    def test_describe_renders(self):
        text = parallelism_profile(complex_matmul_program(32).mdg).describe()
        assert "parallelism=" in text
        assert "width=4" in text

    def test_profile_predicts_mixed_parallelism_payoff(self, cm5_16):
        """The metric's purpose: high average parallelism <=> MPMD gain."""
        from repro.analysis.comparison import compare_spmd_mpmd
        from repro.machine.fidelity import HardwareFidelity

        wide = complex_matmul_program(64).mdg  # parallelism > 2
        narrow = jacobi_program(4, 64).mdg  # parallelism = 1
        gain_wide = compare_spmd_mpmd(
            wide, cm5_16, HardwareFidelity.ideal()
        ).mpmd_advantage
        gain_narrow = compare_spmd_mpmd(
            narrow, cm5_16, HardwareFidelity.ideal()
        ).mpmd_advantage
        assert gain_wide > gain_narrow
