"""Bit-level reproducibility of the entire pipeline.

HPC experiments must replay exactly: same inputs, same allocation, same
schedule, same program, same simulated times — including under seeded
jitter. These tests compile everything twice and compare.
"""

import pytest

from repro.machine.fidelity import HardwareFidelity
from repro.machine.presets import cm5
from repro.pipeline import compile_mdg, measure
from repro.programs import complex_matmul_program, strassen_program


@pytest.fixture(scope="module", params=["complex", "strassen"])
def bundle(request):
    if request.param == "complex":
        return complex_matmul_program(32)
    return strassen_program(32)


class TestPipelineReproducibility:
    def test_allocation_identical(self, bundle, cm5_16):
        a1 = compile_mdg(bundle.mdg, cm5_16).allocation
        a2 = compile_mdg(bundle.mdg, cm5_16).allocation
        assert a1.processors == a2.processors
        assert a1.phi == a2.phi

    def test_schedule_identical(self, bundle, cm5_16):
        s1 = compile_mdg(bundle.mdg, cm5_16).schedule
        s2 = compile_mdg(bundle.mdg, cm5_16).schedule
        assert s1.makespan == s2.makespan
        for name in s1.entries:
            assert s1.entry(name).start == s2.entry(name).start
            assert s1.entry(name).processors == s2.entry(name).processors

    def test_program_identical(self, bundle, cm5_16):
        p1 = compile_mdg(bundle.mdg, cm5_16).program
        p2 = compile_mdg(bundle.mdg, cm5_16).program
        assert sorted(p1.streams) == sorted(p2.streams)
        for proc in p1.streams:
            assert p1.streams[proc] == p2.streams[proc]

    def test_jittered_simulation_identical(self, bundle, cm5_16):
        result = compile_mdg(bundle.mdg, cm5_16)
        fidelity = HardwareFidelity.cm5_like()
        m1 = measure(result, fidelity, record_trace=False).makespan
        m2 = measure(result, fidelity, record_trace=False).makespan
        assert m1 == m2

    def test_different_jitter_seeds_differ(self, bundle, cm5_16):
        result = compile_mdg(bundle.mdg, cm5_16)
        m1 = measure(
            result, HardwareFidelity(jitter=0.02, seed=1), record_trace=False
        ).makespan
        m2 = measure(
            result, HardwareFidelity(jitter=0.02, seed=2), record_trace=False
        ).makespan
        assert m1 != m2

    def test_program_bundles_deterministic(self, bundle):
        """Rebuilding the bundle gives identical cost models and kernels'
        reference values (no hidden RNG state)."""
        import numpy as np

        from repro.runtime.verify import sequential_reference

        rebuild = (
            complex_matmul_program(32)
            if "complex" in bundle.name
            else strassen_program(32)
        )
        v1 = sequential_reference(bundle.app)
        v2 = sequential_reference(rebuild.app)
        for name in v1:
            assert np.array_equal(v1[name], v2[name])
