"""Hypothesis property tests: valid generated graphs check clean,
mutated-to-invalid graphs always produce at least one error finding."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import check_document, check_mdg
from repro.graph import generators
from repro.graph.serialization import mdg_to_dict

GENERATORS = [
    lambda n, seed: generators.chain_mdg(max(2, n), seed=seed),
    lambda n, seed: generators.fork_join_mdg(max(2, n), seed=seed),
    lambda n, seed: generators.diamond_mdg(max(1, n // 2), seed=seed),
    lambda n, seed: generators.layered_random_mdg(3, max(2, n // 2), seed=seed),
    lambda n, seed: generators.series_parallel_mdg(max(2, n), seed=seed),
    lambda n, seed: generators.random_mdg(max(3, n), seed=seed),
]

graphs = st.builds(
    lambda idx, n, seed: GENERATORS[idx](n, seed),
    st.integers(0, len(GENERATORS) - 1),
    st.integers(2, 8),
    st.integers(0, 10_000),
)


def _break_cycle(doc):
    if not doc["edges"]:  # edgeless graph: degrade to a self-loop
        return _break_self_loop(doc)
    first = doc["edges"][0]
    doc["edges"].append(
        {"source": first["target"], "target": first["source"], "transfers": []}
    )
    return doc  # MDG001 (or MDG002 if the reverse closes a 1-edge loop)


def _break_self_loop(doc):
    name = doc["nodes"][0]["name"]
    doc["edges"].append({"source": name, "target": name, "transfers": []})
    return doc  # MDG002


def _break_dangling(doc):
    doc["edges"].append(
        {"source": doc["nodes"][0]["name"], "target": "__ghost__", "transfers": []}
    )
    return doc  # MDG004


def _break_duplicate_node(doc):
    doc["nodes"].append(dict(doc["nodes"][0]))
    return doc  # MDG005


def _break_amdahl(doc):
    doc["nodes"][0]["processing"] = {"kind": "amdahl", "alpha": 2.5, "tau": -1.0}
    return doc  # COST003


def _break_unknown_kind(doc):
    doc["nodes"][0]["processing"] = {"kind": "quantum"}
    return doc  # COST007


def _break_transfer(doc):
    if not doc["edges"]:
        return _break_self_loop(doc)
    doc["edges"][0]["transfers"] = [
        {"length_bytes": -64, "kind": "warp", "label": "X"}
    ]
    return doc  # MDG008 + IR002


MUTATIONS = [
    _break_cycle,
    _break_self_loop,
    _break_dangling,
    _break_duplicate_node,
    _break_amdahl,
    _break_unknown_kind,
    _break_transfer,
]


@given(graphs)
@settings(max_examples=30, deadline=None)
def test_valid_generated_graphs_have_zero_error_findings(mdg):
    report = check_mdg(mdg, compile_schedule=False)
    errors = [f for f in report.findings if f.severity.value == "error"]
    assert errors == [], f"{mdg.name}: {[str(f) for f in errors]}"


@given(graphs, st.integers(0, len(MUTATIONS) - 1))
@settings(max_examples=40, deadline=None)
def test_mutated_invalid_graphs_have_error_findings(mdg, mutation_index):
    doc = mdg_to_dict(mdg)
    doc = MUTATIONS[mutation_index](doc)
    report = check_document(doc, artifact=f"mutated:{mdg.name}")
    assert report.has_errors, (
        f"mutation {MUTATIONS[mutation_index].__name__} on {mdg.name} "
        "produced no error finding"
    )
