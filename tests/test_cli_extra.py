"""Unit tests for the export-dot and trace CLI subcommands."""

import json

import pytest

from repro.cli import main


class TestExportDot:
    def test_prints_dot(self, capsys):
        assert main(["export-dot", "--program", "complex", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "init_Ar" in out

    def test_writes_file(self, tmp_path, capsys):
        path = tmp_path / "graph.dot"
        assert (
            main(
                ["export-dot", "--program", "fft2d", "--n", "16", "-o", str(path)]
            )
            == 0
        )
        assert path.read_text().startswith("digraph")

    def test_allocated_annotation(self, capsys):
        assert (
            main(
                [
                    "export-dot",
                    "--program",
                    "complex",
                    "--n",
                    "16",
                    "-p",
                    "4",
                    "--allocated",
                ]
            )
            == 0
        )
        assert "p=" in capsys.readouterr().out


class TestTraceExport:
    def test_writes_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "--program",
                    "complex",
                    "--n",
                    "16",
                    "-p",
                    "4",
                    "--fidelity",
                    "ideal",
                    "-o",
                    str(path),
                ]
            )
            == 0
        )
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        assert document["otherData"]["machine"] == "CM-5"
        assert "wrote Chrome trace" in capsys.readouterr().out

    def test_spmd_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "--program",
                    "pipeline",
                    "--n",
                    "16",
                    "-p",
                    "4",
                    "--spmd",
                    "-o",
                    str(path),
                ]
            )
            == 0
        )
        events = json.loads(path.read_text())["traceEvents"]
        # SPMD: every processor participates in every compute.
        computes = [e for e in events if e.get("cat") == "compute"]
        assert {e["tid"] for e in computes} == {0, 1, 2, 3}
