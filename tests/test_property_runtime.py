"""Property tests of the value runtime on randomized programs.

Random matrix shapes, group sizes, and reduction structures: the
distributed execution must always reproduce the sequential reference, and
the measured redistribution traffic must always conserve the arrays.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.programs.synthetic import pipeline_program, reduction_tree_program
from repro.programs.complex_matmul import complex_matmul_program
from repro.runtime.executor import ValueExecutor
from repro.runtime.verify import verify_against_reference

SETTINGS = dict(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@settings(**SETTINGS)
@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=5),
)
def test_reduction_tree_correct_for_any_group_size(levels, n, group):
    bundle = reduction_tree_program(levels=levels, n=n)
    report = ValueExecutor(bundle.app).run(
        {name: group for name in bundle.app.computational_nodes()}
    )
    verify_against_reference(bundle.app, report)


@settings(**SETTINGS)
@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=2, max_value=8),
    st.lists(st.integers(min_value=1, max_value=6), min_size=8, max_size=8),
)
def test_pipeline_correct_with_heterogeneous_groups(stages, n, groups):
    bundle = pipeline_program(stages=stages, n=n)
    nodes = bundle.app.computational_nodes()
    allocation = {
        name: groups[k % len(groups)] for k, name in enumerate(nodes)
    }
    report = ValueExecutor(bundle.app).run(allocation)
    verify_against_reference(bundle.app, report)


@settings(**SETTINGS)
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
)
def test_complex_matmul_mixed_groups(n, g1, g2):
    bundle = complex_matmul_program(n)
    nodes = bundle.app.computational_nodes()
    allocation = {
        name: (g1 if "mul" in name else g2) for name in nodes
    }
    report = ValueExecutor(bundle.app).run(allocation)
    verify_against_reference(bundle.app, report)
    # Cross-check the complex identity directly.
    from repro.runtime.verify import sequential_reference

    values = sequential_reference(bundle.app)
    a = values["init_Ar"] + 1j * values["init_Ai"]
    b = values["init_Br"] + 1j * values["init_Bi"]
    assert np.allclose(report.outputs["real"], (a @ b).real)


@settings(**SETTINGS)
@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
)
def test_traffic_conservation(n, g_producer, g_consumer):
    """Bytes moved between two groups always total the array size,
    regardless of how the group sizes divide the rows."""
    bundle = pipeline_program(stages=1, n=n)
    nodes = bundle.app.computational_nodes()
    allocation = {}
    for name in nodes:
        allocation[name] = g_consumer if name.startswith("stage") else g_producer
    report = ValueExecutor(bundle.app).run(allocation)
    for stat in report.transfers:
        assert stat.bytes_moved == stat.array_bytes
