"""Differential test: convex solver + PSA vs the exhaustive oracle.

On graphs small enough for :func:`exhaustive_best_allocation` to
enumerate every power-of-two allocation, the full pipeline must agree
with the brute-force oracle:

* the continuous optimum ``Phi`` lower-bounds the oracle's best exact
  ``max(A, C)`` (with ``t_n = 0`` the relaxation is inert, so this is a
  theorem, not a heuristic);
* PSA schedules built from *either* allocation are precedence-valid;
* neither schedule finishes before ``Phi``.

Hypothesis drives seeded ``random_mdg`` topologies (``derandomize=True``
keeps CI deterministic).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.exhaustive import exhaustive_best_allocation
from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.costs.transfer import TransferCostParameters
from repro.graph.generators import random_mdg
from repro.machine.parameters import MachineParameters
from repro.scheduling.psa import prioritized_schedule

SOLVER = ConvexSolverOptions(multistart_targets=(4.0,))

MACHINE = MachineParameters(
    "diff4",
    4,
    TransferCostParameters(t_ss=1e-4, t_ps=5e-9, t_sr=8e-5, t_pr=4e-9, t_n=0.0),
)


@settings(max_examples=12, derandomize=True, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    edge_probability=st.sampled_from([0.15, 0.35, 0.6]),
)
def test_solver_psa_agrees_with_exhaustive_oracle(n, seed, edge_probability):
    mdg = random_mdg(n, seed=seed, edge_probability=edge_probability).normalized()

    oracle = exhaustive_best_allocation(mdg, MACHINE)
    solved = solve_allocation(mdg, MACHINE, SOLVER)

    # With t_n = 0 the monomial relaxation is inert, so the continuous
    # optimum must lower-bound the best integer allocation's exact cost.
    assert solved.phi <= oracle.phi * (1 + 1e-4)

    schedule_solved = prioritized_schedule(mdg, solved.processors, MACHINE)
    schedule_oracle = prioritized_schedule(mdg, oracle.processors, MACHINE)

    # Precedence-validity of both schedules (raises on violation).
    schedule_solved.validate()
    schedule_oracle.validate()

    # No schedule of an integer allocation can beat the continuous bound.
    assert schedule_solved.makespan >= solved.phi * (1 - 1e-6)
    assert schedule_oracle.makespan >= solved.phi * (1 - 1e-6)

    # Same processor budget on both sides.
    assert schedule_solved.total_processors == MACHINE.processors
    assert schedule_oracle.total_processors == MACHINE.processors


@settings(max_examples=6, derandomize=True, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_oracle_makespan_never_beats_phi_on_dense_graphs(seed):
    """Dense 5-node graphs stress the transfer terms specifically."""
    mdg = random_mdg(
        5, seed=seed, edge_probability=0.8, transfer_probability=0.9
    ).normalized()
    oracle = exhaustive_best_allocation(mdg, MACHINE)
    solved = solve_allocation(mdg, MACHINE, SOLVER)
    assert solved.phi <= oracle.phi * (1 + 1e-4)
    schedule = prioritized_schedule(mdg, oracle.processors, MACHINE)
    schedule.validate()
    assert schedule.makespan >= solved.phi * (1 - 1e-6)
