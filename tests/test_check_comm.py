"""Unit tests for the comm pass family (COMM001-COMM008)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.check import check_file, check_mdg, check_program
from repro.check.commverify import abstract_execute, view_from_doc
from repro.codegen.serialization import program_to_dict, save_program
from repro.errors import CheckError
from repro.graph.generators import paper_example_mdg
from repro.machine.presets import cm5
from repro.pipeline import compile_mdg, compile_spmd, run_resumable


@pytest.fixture(scope="module")
def compiled():
    machine = cm5(8)
    return compile_mdg(paper_example_mdg(), machine), machine


@pytest.fixture(scope="module")
def compiled_bytes():
    # The paper example's edges are pure zero-byte sync messages; byte
    # reconciliation needs a program that actually moves data.
    from repro.programs import PROGRAM_FACTORIES

    machine = cm5(8)
    bundle = PROGRAM_FACTORIES["complex"](16)
    return compile_mdg(bundle.mdg, machine), machine


@pytest.fixture
def program_doc(compiled):
    compilation, _ = compiled
    return copy.deepcopy(program_to_dict(compilation.program))


def rule_ids(report) -> set[str]:
    return {f.rule_id for f in report}


def findings_for(report, rule_id):
    return [f for f in report if f.rule_id == rule_id]


def minimal_doc(streams, edges, total=2):
    return {
        "kind": "mpmd_program",
        "schema_version": 1,
        "total_processors": total,
        "streams": streams,
        "edges": edges,
        "info": {},
    }


class TestCOMM001Structure:
    def test_clean_compiled_program(self, program_doc):
        assert len(check_program(program_doc)) == 0

    def test_bad_schema_version(self, program_doc):
        program_doc["schema_version"] = 99
        report = check_program(program_doc)
        assert rule_ids(report) == {"COMM001"}
        assert any("schema version" in f.message for f in report)

    def test_out_of_range_stream(self, program_doc):
        program_doc["streams"]["999"] = []
        report = check_program(program_doc)
        assert rule_ids(report) == {"COMM001"}
        assert any("out of range" in f.message for f in report)

    def test_unknown_op_kind(self, program_doc):
        key = next(iter(program_doc["streams"]))
        program_doc["streams"][key].append({"op": "barrier"})
        report = check_program(program_doc)
        assert "COMM001" in rule_ids(report)

    def test_negative_cost(self, program_doc):
        key = next(iter(program_doc["streams"]))
        program_doc["streams"][key].append(
            {"op": "compute", "node": "x", "cost": -1.0}
        )
        report = check_program(program_doc)
        assert "COMM001" in rule_ids(report)

    def test_registry_out_of_range(self, program_doc):
        program_doc["edges"][0]["senders"].append(500)
        report = check_program(program_doc)
        assert "COMM001" in rule_ids(report)
        # Structural problems suppress the semantic rules: no noise.
        assert not rule_ids(report) - {"COMM001"}

    def test_structural_problems_have_locations(self, program_doc):
        program_doc["streams"]["999"] = []
        finding = findings_for(check_program(program_doc), "COMM001")[0]
        assert "$.streams.999" in finding.location


class TestCOMM002DroppedSend:
    def test_dropped_send_detected(self, program_doc):
        for key, ops in program_doc["streams"].items():
            idx = next(
                (i for i, o in enumerate(ops) if o["op"] == "send"), None
            )
            if idx is not None:
                removed = ops.pop(idx)
                break
        report = check_program(program_doc)
        found = findings_for(report, "COMM002")
        assert found
        # The finding names the silent sender and the edge.
        assert any(f"proc {key}" in f.message for f in found)
        assert any(removed["source"] in f.message for f in found)
        assert any(f.location.startswith("$.edges[") for f in found)

    def test_recv_without_any_send(self):
        doc = minimal_doc(
            {"1": [{"op": "recv", "source": "a", "target": "b"}]},
            [{"source": "a", "target": "b", "senders": [], "receivers": [1]}],
        )
        report = check_program(doc)
        assert any(
            "never sent" in f.message for f in findings_for(report, "COMM002")
        )


class TestCOMM003OrphansAndDuplicates:
    def test_duplicated_recv(self, program_doc):
        for key, ops in program_doc["streams"].items():
            idx = next(
                (i for i, o in enumerate(ops) if o["op"] == "recv"), None
            )
            if idx is not None:
                ops.insert(idx, copy.deepcopy(ops[idx]))
                break
        report = check_program(program_doc)
        found = findings_for(report, "COMM003")
        assert found
        assert any("2 recv ops" in f.message for f in found)

    def test_orphan_send(self):
        doc = minimal_doc(
            {"0": [{"op": "send", "source": "a", "target": "b"}]},
            [{"source": "a", "target": "b", "senders": [0], "receivers": []}],
        )
        report = check_program(doc)
        assert any(
            "leaked" in f.message for f in findings_for(report, "COMM003")
        )

    def test_unregistered_sender_processor(self):
        # Proc 1 also posts the a->b send, but only proc 0 is registered.
        doc = minimal_doc(
            {
                "0": [{"op": "send", "source": "a", "target": "b"}],
                "1": [
                    {"op": "send", "source": "a", "target": "b"},
                    {"op": "recv", "source": "a", "target": "b"},
                ],
            },
            [{"source": "a", "target": "b", "senders": [0], "receivers": [1]}],
        )
        report = check_program(doc)
        assert any(
            "not in the edge's sender registry" in f.message
            for f in findings_for(report, "COMM003")
        ), [str(f) for f in report]

    def test_registered_receiver_without_recv(self, program_doc):
        for key, ops in program_doc["streams"].items():
            idx = next(
                (i for i, o in enumerate(ops) if o["op"] == "recv"), None
            )
            if idx is not None:
                ops.pop(idx)
                break
        report = check_program(program_doc)
        assert any(
            "registered receiver" in f.message
            for f in findings_for(report, "COMM003")
        )


class TestCOMM004ByteSkew:
    def test_byte_skew_detected(self, program_doc):
        done = False
        for ops in program_doc["streams"].values():
            for o in ops:
                if o["op"] == "send":
                    o["bytes_sent"] += max(1.0, 0.01 * o["bytes_sent"])
                    done = True
                    break
            if done:
                break
        assert done
        report = check_program(program_doc)
        found = findings_for(report, "COMM004")
        assert found
        assert any("byte(s) sent" in f.message for f in found)
        assert all(f.location.startswith("$.edges[") for f in found)

    def test_balanced_bytes_clean(self, program_doc):
        assert not findings_for(check_program(program_doc), "COMM004")


class TestCOMM005Deadlock:
    def test_crossed_recvs_report_wait_cycle(self):
        doc = minimal_doc(
            {
                "0": [
                    {"op": "recv", "source": "c", "target": "d"},
                    {"op": "send", "source": "a", "target": "b"},
                ],
                "1": [
                    {"op": "recv", "source": "a", "target": "b"},
                    {"op": "send", "source": "c", "target": "d"},
                ],
            },
            [
                {"source": "a", "target": "b", "senders": [0], "receivers": [1]},
                {"source": "c", "target": "d", "senders": [1], "receivers": [0]},
            ],
        )
        report = check_program(doc)
        found = findings_for(report, "COMM005")
        assert found
        message = found[0].message
        assert "wait-for cycle" in message
        assert "proc 0 at instruction 0" in message
        assert "proc 1 at instruction 0" in message

    def test_dropped_send_stalls_without_cycle(self, program_doc):
        for ops in program_doc["streams"].values():
            idx = next(
                (i for i, o in enumerate(ops) if o["op"] == "send"), None
            )
            if idx is not None:
                ops.pop(idx)
                break
        report = check_program(program_doc)
        found = findings_for(report, "COMM005")
        assert found
        assert any("stalled" in f.message for f in found)

    def test_abstract_execution_completes_on_clean_program(self, program_doc):
        result = abstract_execute(view_from_doc(program_doc))
        assert result.completed
        assert result.executed == result.total
        assert not result.blocked

    def test_abstract_execution_reports_indices(self):
        view = view_from_doc(
            minimal_doc(
                {
                    "0": [
                        {"op": "compute", "node": "a", "cost": 1.0},
                        {"op": "recv", "source": "x", "target": "a"},
                    ],
                },
                [{"source": "x", "target": "a", "senders": [0], "receivers": [0]}],
                total=1,
            )
        )
        result = abstract_execute(view)
        assert not result.completed
        assert result.blocked[0].processor == 0
        assert result.blocked[0].index == 1
        assert result.blocked[0].edge == ("x", "a")


class TestCOMM006Order:
    def test_recv_after_compute(self, program_doc):
        done = False
        for ops in program_doc["streams"].values():
            for i, o in enumerate(ops):
                if o["op"] != "recv":
                    continue
                node = o["target"]
                ci = next(
                    (j for j in range(i + 1, len(ops))
                     if ops[j]["op"] == "compute" and ops[j]["node"] == node),
                    None,
                )
                if ci is not None:
                    ops.insert(ci, ops.pop(i))
                    done = True
                    break
            if done:
                break
        assert done
        report = check_program(program_doc)
        found = findings_for(report, "COMM006")
        assert found
        assert any("recv" in f.message for f in found)
        assert all(f.location.startswith("$.streams.") for f in found)

    def test_send_before_compute(self):
        doc = minimal_doc(
            {
                "0": [
                    {"op": "send", "source": "a", "target": "b"},
                    {"op": "compute", "node": "a", "cost": 1.0},
                ],
                "1": [
                    {"op": "recv", "source": "a", "target": "b"},
                    {"op": "compute", "node": "b", "cost": 1.0},
                ],
            },
            [{"source": "a", "target": "b", "senders": [0], "receivers": [1]}],
        )
        found = findings_for(check_program(doc), "COMM006")
        assert found
        assert any("send phase" in f.message for f in found)

    def test_double_compute(self, program_doc):
        for ops in program_doc["streams"].values():
            idx = next(
                (i for i, o in enumerate(ops) if o["op"] == "compute"), None
            )
            if idx is not None:
                ops.append(copy.deepcopy(ops[idx]))
                break
        found = findings_for(check_program(program_doc), "COMM006")
        assert any("computed 2 times" in f.message for f in found)

    def test_topological_precedence_violation(self):
        # b depends on a (edge a->b) but proc 0 computes b first.
        doc = minimal_doc(
            {
                "0": [
                    {"op": "compute", "node": "b", "cost": 1.0},
                    {"op": "compute", "node": "a", "cost": 1.0},
                    {"op": "send", "source": "a", "target": "b"},
                    {"op": "recv", "source": "a", "target": "b"},
                ],
            },
            [{"source": "a", "target": "b", "senders": [0], "receivers": [0]}],
            total=1,
        )
        found = findings_for(check_program(doc), "COMM006")
        assert any("topological precedence" in f.message for f in found)


class TestCOMM007ScheduleAgreement:
    def test_clean_program_agrees(self, compiled):
        compilation, machine = compiled
        report = check_program(
            compilation.program,
            schedule=compilation.schedule,
            machine=machine,
        )
        assert len(report) == 0

    def test_moved_compute_detected(self, compiled):
        compilation, machine = compiled
        doc = copy.deepcopy(program_to_dict(compilation.program))
        moved = None
        for key, ops in doc["streams"].items():
            for i, o in enumerate(ops):
                if o["op"] == "compute":
                    moved = ops.pop(i)
                    break
            if moved is not None:
                break
        report = check_program(
            doc, schedule=compilation.schedule, machine=machine
        )
        found = findings_for(report, "COMM007")
        assert any(
            f"node {moved['node']!r}" in f.message for f in found
        )

    def test_width_mismatch_detected(self, compiled):
        compilation, machine = compiled
        doc = copy.deepcopy(program_to_dict(compilation.program))
        name = next(iter(doc["info"]["allocation"]))
        doc["info"]["allocation"][name] += 1
        report = check_program(
            doc, schedule=compilation.schedule, machine=machine
        )
        assert any(
            "width" in f.message for f in findings_for(report, "COMM007")
        )

    def test_without_schedule_rule_is_silent(self, program_doc):
        assert not findings_for(check_program(program_doc), "COMM007")


class TestCOMM008CostReconciliation:
    def test_clean_program_reconciles(self, compiled):
        compilation, machine = compiled
        report = check_program(
            compilation.program,
            schedule=compilation.schedule,
            mdg=compilation.schedule.mdg,
            machine=machine,
        )
        assert len(report) == 0

    def test_byte_total_mismatch_with_mdg(self, compiled_bytes):
        compilation, machine = compiled_bytes
        doc = copy.deepcopy(program_to_dict(compilation.program))
        for ops in doc["streams"].values():
            sends = [o for o in ops if o["op"] == "send" and o["bytes_sent"] > 0]
            if sends:
                sends[0]["bytes_sent"] *= 3
                break
        report = check_program(
            doc, mdg=compilation.schedule.mdg, machine=machine
        )
        assert any(
            "MDG's transfers total" in f.message
            for f in findings_for(report, "COMM008")
        )

    def test_missing_sync_edge_detected(self, compiled):
        compilation, machine = compiled
        doc = copy.deepcopy(program_to_dict(compilation.program))
        gone = doc["edges"].pop()
        edge = (gone["source"], gone["target"])
        for ops in doc["streams"].values():
            ops[:] = [
                o for o in ops
                if o["op"] == "compute"
                or (o["source"], o["target"]) != edge
            ]
        report = check_program(
            doc, mdg=compilation.schedule.mdg, machine=machine
        )
        assert any(
            "has no messages" in f.message
            for f in findings_for(report, "COMM008")
        )

    def test_silently_free_communication_detected(self, compiled_bytes):
        compilation, machine = compiled_bytes
        doc = copy.deepcopy(program_to_dict(compilation.program))
        # Zero out every byte cost while the CM-5 machine prices bytes.
        victims = set()
        for ops in doc["streams"].values():
            for o in ops:
                if o["op"] in ("send", "recv"):
                    if o.get("bytes_sent", o.get("bytes_received", 0)) > 0:
                        victims.add((o["source"], o["target"]))
                    o["byte_cost"] = 0.0
        assert victims, "corpus program should move real bytes"
        report = check_program(
            doc, mdg=compilation.schedule.mdg, machine=machine
        )
        assert any(
            "silently free" in f.message
            for f in findings_for(report, "COMM008")
        )

    def test_phantom_edge_detected(self, compiled):
        compilation, machine = compiled
        doc = copy.deepcopy(program_to_dict(compilation.program))
        doc["edges"].append(
            {"source": "ghost", "target": "town", "senders": [0],
             "receivers": [1]}
        )
        doc["streams"]["0"].append(
            {"op": "send", "source": "ghost", "target": "town"}
        )
        doc["streams"]["1"].append(
            {"op": "recv", "source": "ghost", "target": "town"}
        )
        report = check_program(
            doc, mdg=compilation.schedule.mdg, machine=machine
        )
        assert any(
            "does not exist in the MDG" in f.message
            for f in findings_for(report, "COMM008")
        )


class TestIntegration:
    def test_check_file_routes_program_artifacts(self, tmp_path, compiled):
        compilation, _ = compiled
        path = save_program(compilation.program, tmp_path / "prog.json")
        report = check_file(path)
        assert report.artifacts == [str(path)]
        assert len(report) == 0
        assert any(name.startswith("comm.") for name in report.passes_run)
        # MDG families must not have produced noise.
        assert not any(
            name.startswith("graph.") for name in report.passes_run
        )

    def test_check_file_reports_broken_artifact(self, tmp_path, compiled):
        compilation, _ = compiled
        doc = program_to_dict(compilation.program)
        doc["streams"]["999"] = []
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(doc))
        report = check_file(path)
        assert "COMM001" in rule_ids(report)

    def test_check_mdg_runs_comm_family_after_compile(self):
        report = check_mdg(paper_example_mdg(), cm5(8))
        assert any(name.startswith("comm.") for name in report.passes_run)
        assert len(report) == 0

    def test_pipeline_verify_program_gate_clean(self):
        result = compile_mdg(paper_example_mdg(), cm5(8), verify_program=True)
        assert result.program.n_instructions > 0
        spmd = compile_spmd(paper_example_mdg(), cm5(8), verify_program=True)
        assert spmd.program.n_instructions > 0

    def test_run_resumable_verify_program_gate(self, tmp_path):
        run = run_resumable(
            paper_example_mdg(),
            cm5(8),
            cache_dir=tmp_path / "cache",
            simulate=False,
            verify_program=True,
        )
        assert run.compilation.program.n_instructions > 0

    def test_pipeline_gate_rejects_broken_codegen(self, monkeypatch):
        import repro.pipeline as pipeline_mod
        from repro.codegen.program import MPMDProgram, RecvOp

        def broken_codegen(schedule, machine):
            # A recv with no matching send: straight to the gate.
            program = MPMDProgram(total_processors=schedule.total_processors)
            program.streams[0] = [
                RecvOp(source="a", target="b", startup_cost=0.0, byte_cost=0.0)
            ]
            program.senders[("a", "b")] = (1,)
            program.receivers[("a", "b")] = (0,)
            return program

        monkeypatch.setattr(
            pipeline_mod, "generate_mpmd_program", broken_codegen
        )
        with pytest.raises(CheckError, match="COMM"):
            compile_mdg(paper_example_mdg(), cm5(8), verify_program=True)
