"""Property tests for posynomial substitution (the algebra's subtlest op)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.posynomial import Monomial, Posynomial

coefficients = st.floats(min_value=1e-2, max_value=1e2)
exponents = st.floats(min_value=-2.0, max_value=2.0).map(lambda e: round(e, 2))
positives = st.floats(min_value=0.2, max_value=5.0)


@st.composite
def posynomials_in_pq(draw):
    terms = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        exps = {}
        if draw(st.booleans()):
            exps["p"] = draw(exponents)
        if draw(st.booleans()):
            exps["q"] = draw(exponents)
        terms.append(Monomial(draw(coefficients), exps))
    return Posynomial(terms)


@st.composite
def monomials_in_r(draw):
    return Monomial(draw(coefficients), {"r": draw(exponents)})


@settings(max_examples=60)
@given(posynomials_in_pq(), monomials_in_r(), positives, positives)
def test_monomial_substitution_commutes_with_evaluation(f, g, q_val, r_val):
    """f[p := g](q, r) == f(p = g(r), q)."""
    substituted = f.substitute({"p": g.as_posynomial()})
    direct = f.evaluate({"p": g.evaluate({"r": r_val}), "q": q_val})
    via_sub = substituted.evaluate({"q": q_val, "r": r_val})
    assert via_sub == pytest.approx(direct, rel=1e-9)


@settings(max_examples=60)
@given(posynomials_in_pq(), positives, positives)
def test_scalar_substitution_commutes(f, p_val, q_val):
    substituted = f.substitute({"p": p_val})
    assert substituted.evaluate({"q": q_val}) == pytest.approx(
        f.evaluate({"p": p_val, "q": q_val}), rel=1e-9
    )


@settings(max_examples=60)
@given(posynomials_in_pq(), positives, positives)
def test_identity_substitution(f, p_val, q_val):
    renamed = f.substitute({"p": Posynomial.variable("p")})
    assert renamed.evaluate({"p": p_val, "q": q_val}) == pytest.approx(
        f.evaluate({"p": p_val, "q": q_val}), rel=1e-12
    )


@settings(max_examples=60)
@given(posynomials_in_pq(), positives, positives, positives)
def test_rename_is_invertible(f, p_val, q_val, _unused):
    renamed = f.substitute({"p": Posynomial.variable("s")})
    back = renamed.substitute({"s": Posynomial.variable("p")})
    assert back == f


@settings(max_examples=40)
@given(posynomials_in_pq(), monomials_in_r())
def test_substitution_preserves_cone_membership(f, g):
    """The result is a genuine posynomial: positive coefficients, and it
    evaluates positive everywhere (unless f was p-free and zero-ish)."""
    result = f.substitute({"p": g.as_posynomial()})
    for term in result.terms:
        assert term.coefficient > 0
    value = result.evaluate({"q": 1.0, "r": 1.0})
    assert value > 0 or math.isclose(value, 0.0)
