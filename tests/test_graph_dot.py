"""Unit tests for DOT export."""

from repro.costs.processing import AmdahlProcessingCost, ZeroProcessingCost
from repro.costs.transfer import ArrayTransfer, TransferKind
from repro.graph.dot import mdg_to_dot
from repro.graph.mdg import MDG


def build() -> MDG:
    mdg = MDG("dot test")
    mdg.add_node("a", AmdahlProcessingCost(0.1, 1.0))
    mdg.add_node("b", AmdahlProcessingCost(0.1, 1.0))
    mdg.add_node("dummy", ZeroProcessingCost())
    mdg.add_edge("a", "b", [ArrayTransfer(4096.0, TransferKind.ROW2ROW)])
    mdg.add_edge("dummy", "a")
    return mdg


class TestDotExport:
    def test_contains_nodes_and_edges(self):
        dot = mdg_to_dot(build())
        assert 'digraph "dot test"' in dot
        assert '"a" -> "b"' in dot
        assert '"dummy" -> "a"' in dot

    def test_dummy_drawn_as_point(self):
        dot = mdg_to_dot(build())
        assert "shape=point" in dot

    def test_transfer_bytes_labelled(self):
        dot = mdg_to_dot(build())
        assert "4096 B" in dot

    def test_allocation_annotated(self):
        dot = mdg_to_dot(build(), allocation={"a": 4, "b": 2})
        assert "p=4" in dot
        assert "p=2" in dot

    def test_custom_label_function(self):
        dot = mdg_to_dot(build(), node_label=lambda n: f"<<{n}>>")
        assert "<<a>>" in dot

    def test_quotes_escaped(self):
        mdg = MDG('has "quotes"')
        mdg.add_node("n", AmdahlProcessingCost(0.1, 1.0))
        dot = mdg_to_dot(mdg)
        assert '\\"quotes\\"' in dot

    def test_ends_with_newline(self):
        assert mdg_to_dot(build()).endswith("}\n")
