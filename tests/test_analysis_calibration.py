"""Unit tests for the shared calibration drivers."""

import pytest

from repro.analysis.calibration import (
    measure_kernel_times,
    measure_transfer_components,
    refit_table1,
    refit_table2,
)
from repro.costs.transfer import ArrayTransfer, TransferKind
from repro.machine.fidelity import HardwareFidelity
from repro.machine.presets import CM5_TRANSFER
from repro.programs.common import table1_matmul


class TestMeasureKernelTimes:
    def test_ideal_fidelity_matches_model_exactly(self):
        model = table1_matmul(64)
        times = measure_kernel_times(
            model, HardwareFidelity.ideal(), procs=(1, 4, 16)
        )
        assert times == pytest.approx([model.cost(p) for p in (1, 4, 16)])

    def test_nonideal_slower_at_scale(self):
        model = table1_matmul(64)
        ideal = measure_kernel_times(model, HardwareFidelity.ideal(), procs=(64,))
        noisy = measure_kernel_times(
            model, HardwareFidelity(compute_curvature=0.1), procs=(64,)
        )
        assert noisy[0] > ideal[0]


class TestMeasureTransferComponents:
    def test_ideal_matches_cost_model(self):
        from repro.costs.transfer import TransferCostModel

        transfer = ArrayTransfer(32768.0, TransferKind.ROW2ROW)
        send, recv = measure_transfer_components(
            transfer, 4, 4, HardwareFidelity.ideal()
        )
        model = TransferCostModel(CM5_TRANSFER)
        assert send == pytest.approx(model.send_cost(transfer, 4, 4))
        assert recv == pytest.approx(model.receive_cost(transfer, 4, 4))

    def test_2d_transfer_measured(self):
        transfer = ArrayTransfer(8192.0, TransferKind.ROW2COL)
        send, recv = measure_transfer_components(
            transfer, 2, 4, HardwareFidelity.ideal()
        )
        assert send > 0 and recv > 0


class TestRefits:
    def test_table1_ideal_recovers_exactly(self):
        refit = refit_table1(HardwareFidelity.ideal(), procs=(1, 2, 4, 8, 16))
        assert refit.matmul.alpha == pytest.approx(0.121, abs=1e-9)
        assert refit.matadd.tau == pytest.approx(3.73e-3, rel=1e-9)

    def test_table2_ideal_recovers_exactly(self):
        _samples, fit = refit_table2(
            HardwareFidelity.ideal(),
            configs=((1, 1), (2, 4), (4, 2), (8, 8)),
            lengths=(8192.0, 32768.0),
        )
        assert fit.parameters.t_ss == pytest.approx(CM5_TRANSFER.t_ss, rel=1e-6)
        assert fit.parameters.t_pr == pytest.approx(CM5_TRANSFER.t_pr, rel=1e-6)
