"""Unit tests for the processor pool."""

import pytest

from repro.errors import SchedulingError, ValidationError
from repro.scheduling.processor_pool import ProcessorPool


class TestProcessorPool:
    def test_initially_all_free(self):
        pool = ProcessorPool(4)
        assert pool.satisfaction_time(1) == 0.0
        assert pool.satisfaction_time(4) == 0.0
        assert pool.busy_count(0.0) == 0

    def test_acquire_earliest_free_lowest_id(self):
        pool = ProcessorPool(4)
        assert pool.acquire(2, 0.0, 5.0) == (0, 1)
        assert pool.acquire(2, 0.0, 3.0) == (2, 3)

    def test_satisfaction_time_kth_smallest(self):
        pool = ProcessorPool(3)
        pool.acquire(2, 0.0, 10.0)  # procs 0, 1 busy until 10
        assert pool.satisfaction_time(1) == 0.0
        assert pool.satisfaction_time(2) == 10.0
        assert pool.satisfaction_time(3) == 10.0

    def test_acquire_after_release(self):
        pool = ProcessorPool(2)
        pool.acquire(2, 0.0, 4.0)
        assert pool.acquire(1, 4.0, 6.0) == (0,)

    def test_acquire_too_early_is_an_error(self):
        pool = ProcessorPool(2)
        pool.acquire(2, 0.0, 4.0)
        with pytest.raises(SchedulingError, match="PST"):
            pool.acquire(1, 2.0, 3.0)

    def test_more_than_machine_rejected(self):
        pool = ProcessorPool(2)
        with pytest.raises(SchedulingError):
            pool.satisfaction_time(3)

    def test_negative_duration_rejected(self):
        pool = ProcessorPool(2)
        with pytest.raises(SchedulingError):
            pool.acquire(1, 5.0, 4.0)

    def test_busy_count(self):
        pool = ProcessorPool(4)
        pool.acquire(3, 0.0, 10.0)
        assert pool.busy_count(5.0) == 3
        assert pool.busy_count(10.0) == 0

    def test_zero_processors_rejected(self):
        with pytest.raises(ValidationError):
            ProcessorPool(0)

    def test_zero_count_rejected(self):
        with pytest.raises(ValidationError):
            ProcessorPool(2).satisfaction_time(0)
