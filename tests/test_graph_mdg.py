"""Unit tests for the MDG data structure."""

import pytest

from repro.costs.processing import AmdahlProcessingCost, ZeroProcessingCost
from repro.costs.transfer import ArrayTransfer, TransferKind
from repro.errors import CycleError, GraphError
from repro.graph.mdg import MDG, START_NAME, STOP_NAME


def proc(tau=1.0):
    return AmdahlProcessingCost(alpha=0.1, tau=tau)


def transfer():
    return ArrayTransfer(1024.0, TransferKind.ROW2ROW)


class TestConstruction:
    def test_add_nodes_and_edges(self):
        mdg = MDG("g")
        mdg.add_node("a", proc())
        mdg.add_node("b", proc())
        edge = mdg.add_edge("a", "b", [transfer()])
        assert mdg.n_nodes == 2
        assert mdg.n_edges == 1
        assert edge.total_bytes == 1024.0

    def test_duplicate_node_rejected(self):
        mdg = MDG("g")
        mdg.add_node("a", proc())
        with pytest.raises(GraphError, match="duplicate"):
            mdg.add_node("a", proc())

    def test_duplicate_edge_rejected(self):
        mdg = MDG("g")
        mdg.add_node("a", proc())
        mdg.add_node("b", proc())
        mdg.add_edge("a", "b")
        with pytest.raises(GraphError, match="duplicate"):
            mdg.add_edge("a", "b")

    def test_self_loop_rejected(self):
        mdg = MDG("g")
        mdg.add_node("a", proc())
        with pytest.raises(GraphError, match="self-loop"):
            mdg.add_edge("a", "a")

    def test_edge_to_unknown_node_rejected(self):
        mdg = MDG("g")
        mdg.add_node("a", proc())
        with pytest.raises(GraphError, match="unknown"):
            mdg.add_edge("a", "ghost")

    def test_empty_name_rejected(self):
        mdg = MDG("g")
        with pytest.raises(GraphError):
            mdg.add_node("", proc())

    def test_non_cost_model_rejected(self):
        mdg = MDG("g")
        with pytest.raises(GraphError, match="ProcessingCostModel"):
            mdg.add_node("a", 3.0)

    def test_bad_transfer_rejected(self):
        mdg = MDG("g")
        mdg.add_node("a", proc())
        mdg.add_node("b", proc())
        with pytest.raises(GraphError, match="ArrayTransfer"):
            mdg.add_edge("a", "b", ["not a transfer"])


class TestAccess:
    def setup_method(self):
        self.mdg = MDG("g")
        for name in ("a", "b", "c"):
            self.mdg.add_node(name, proc())
        self.mdg.add_edge("a", "b")
        self.mdg.add_edge("a", "c")
        self.mdg.add_edge("b", "c")

    def test_predecessors_sorted(self):
        assert self.mdg.predecessors("c") == ["a", "b"]

    def test_successors_sorted(self):
        assert self.mdg.successors("a") == ["b", "c"]

    def test_in_out_edges(self):
        assert [e.source for e in self.mdg.in_edges("c")] == ["a", "b"]
        assert [e.target for e in self.mdg.out_edges("a")] == ["b", "c"]

    def test_sources_and_sinks(self):
        assert self.mdg.sources() == ["a"]
        assert self.mdg.sinks() == ["c"]

    def test_contains_and_len(self):
        assert "a" in self.mdg
        assert "z" not in self.mdg
        assert len(self.mdg) == 3

    def test_unknown_node_errors(self):
        with pytest.raises(GraphError):
            self.mdg.node("ghost")
        with pytest.raises(GraphError):
            self.mdg.predecessors("ghost")
        with pytest.raises(GraphError):
            self.mdg.edge("a", "ghost")

    def test_node_names_insertion_order(self):
        assert self.mdg.node_names() == ["a", "b", "c"]


class TestStructure:
    def test_topological_order_valid(self):
        mdg = MDG("g")
        for name in ("x", "y", "z"):
            mdg.add_node(name, proc())
        mdg.add_edge("z", "y")
        mdg.add_edge("y", "x")
        assert mdg.topological_order() == ["z", "y", "x"]

    def test_validate_empty_rejected(self):
        with pytest.raises(GraphError, match="no nodes"):
            MDG("g").validate()

    def test_cycle_rejected(self):
        # Cycles cannot be built through add_edge ordering alone in a DAG
        # sense, but a diamond with reversed edge can: a->b, b->a.
        mdg = MDG("g")
        mdg.add_node("a", proc())
        mdg.add_node("b", proc())
        mdg.add_edge("a", "b")
        mdg.add_edge("b", "a")
        with pytest.raises(CycleError):
            mdg.validate()


class TestNormalization:
    def test_already_normalized_returned_unchanged(self):
        mdg = MDG("g")
        mdg.add_node("a", proc())
        mdg.add_node("b", proc())
        mdg.add_edge("a", "b")
        assert mdg.normalized() is mdg

    def test_adds_start_for_multiple_sources(self):
        mdg = MDG("g")
        for name in ("s1", "s2", "sink"):
            mdg.add_node(name, proc())
        mdg.add_edge("s1", "sink")
        mdg.add_edge("s2", "sink")
        norm = mdg.normalized()
        assert norm.start == START_NAME
        assert norm.node(START_NAME).is_dummy
        assert set(norm.successors(START_NAME)) == {"s1", "s2"}
        # Original untouched.
        assert not mdg.has_node(START_NAME)

    def test_adds_stop_for_multiple_sinks(self):
        mdg = MDG("g")
        for name in ("src", "t1", "t2"):
            mdg.add_node(name, proc())
        mdg.add_edge("src", "t1")
        mdg.add_edge("src", "t2")
        norm = mdg.normalized()
        assert norm.stop == STOP_NAME
        assert set(norm.predecessors(STOP_NAME)) == {"t1", "t2"}

    def test_idempotent(self):
        mdg = MDG("g")
        for name in ("s1", "s2", "t1", "t2"):
            mdg.add_node(name, proc())
        mdg.add_edge("s1", "t1")
        mdg.add_edge("s2", "t2")
        once = mdg.normalized()
        assert once.normalized() is once

    def test_isolated_nodes_get_wired(self):
        mdg = MDG("g")
        mdg.add_node("lonely", proc())
        mdg.add_node("also", proc())
        norm = mdg.normalized()
        assert norm.is_normalized
        assert norm.start == START_NAME
        assert norm.stop == STOP_NAME

    def test_reserved_name_collision_rejected(self):
        mdg = MDG("g")
        mdg.add_node(START_NAME, proc())
        mdg.add_node("other", proc())
        with pytest.raises(GraphError, match="reserved"):
            mdg.normalized()

    def test_start_property_requires_unique_source(self):
        mdg = MDG("g")
        mdg.add_node("a", proc())
        mdg.add_node("b", proc())
        with pytest.raises(GraphError, match="source"):
            _ = mdg.start


class TestTransformations:
    def test_copy_is_deep_structurally(self):
        mdg = MDG("g")
        mdg.add_node("a", proc())
        mdg.add_node("b", proc())
        mdg.add_edge("a", "b", [transfer()])
        dup = mdg.copy()
        dup.add_node("c", proc())
        assert not mdg.has_node("c")
        assert dup.edge("a", "b").transfers == mdg.edge("a", "b").transfers

    def test_subgraph(self):
        mdg = MDG("g")
        for name in ("a", "b", "c"):
            mdg.add_node(name, proc())
        mdg.add_edge("a", "b")
        mdg.add_edge("b", "c")
        sub = mdg.subgraph(["a", "b"])
        assert sub.node_names() == ["a", "b"]
        assert sub.n_edges == 1

    def test_subgraph_unknown_rejected(self):
        mdg = MDG("g")
        mdg.add_node("a", proc())
        with pytest.raises(GraphError):
            mdg.subgraph(["a", "ghost"])

    def test_map_processing(self):
        mdg = MDG("g")
        mdg.add_node("a", proc(1.0))
        mdg.add_node("b", proc(2.0))
        mdg.add_edge("a", "b")
        zeroed = mdg.map_processing(lambda node: ZeroProcessingCost())
        assert zeroed.node("a").is_dummy
        assert zeroed.n_edges == 1
        # Original untouched.
        assert not mdg.node("a").is_dummy

    def test_is_dummy_flag(self):
        mdg = MDG("g")
        mdg.add_node("real", proc())
        mdg.add_node("ghost", ZeroProcessingCost())
        assert not mdg.node("real").is_dummy
        assert mdg.node("ghost").is_dummy
