"""Unit tests for graph analyses: critical paths, levels, reductions."""

import pytest

from repro.costs.processing import AmdahlProcessingCost
from repro.costs.transfer import ArrayTransfer, TransferKind
from repro.errors import GraphError
from repro.graph.analysis import (
    critical_path,
    longest_path_lengths,
    node_levels,
    transitive_reduction,
)
from repro.graph.mdg import MDG


def proc():
    return AmdahlProcessingCost(0.1, 1.0)


def build_diamond() -> MDG:
    mdg = MDG("diamond")
    for name in ("top", "l", "r", "bot"):
        mdg.add_node(name, proc())
    mdg.add_edge("top", "l")
    mdg.add_edge("top", "r")
    mdg.add_edge("l", "bot")
    mdg.add_edge("r", "bot")
    return mdg


class TestLongestPathLengths:
    def test_unit_weights_count_depth(self):
        mdg = build_diamond()
        finish = longest_path_lengths(mdg)
        assert finish == {"top": 1.0, "l": 2.0, "r": 2.0, "bot": 3.0}

    def test_weighted_nodes(self):
        mdg = build_diamond()
        weights = {"top": 1.0, "l": 5.0, "r": 2.0, "bot": 1.0}
        finish = longest_path_lengths(mdg, node_weight=lambda n: weights[n])
        assert finish["bot"] == pytest.approx(7.0)  # top + l + bot

    def test_edge_weights_add(self):
        mdg = build_diamond()
        finish = longest_path_lengths(
            mdg, edge_weight=lambda e: 10.0 if e.source == "l" else 0.0
        )
        assert finish["bot"] == pytest.approx(13.0)

    def test_matches_y_recursion_semantics(self):
        """finish_i = max_m(finish_m + edge) + weight_i exactly."""
        mdg = build_diamond()
        weights = {"top": 2.0, "l": 3.0, "r": 7.0, "bot": 1.0}
        finish = longest_path_lengths(mdg, node_weight=lambda n: weights[n])
        assert finish["bot"] == pytest.approx(
            max(finish["l"], finish["r"]) + weights["bot"]
        )


class TestCriticalPath:
    def test_path_nodes(self):
        mdg = build_diamond()
        weights = {"top": 1.0, "l": 5.0, "r": 2.0, "bot": 1.0}
        length, path = critical_path(mdg, node_weight=lambda n: weights[n])
        assert length == pytest.approx(7.0)
        assert path == ["top", "l", "bot"]

    def test_tie_breaks_deterministically(self):
        mdg = build_diamond()
        _, path1 = critical_path(mdg)
        _, path2 = critical_path(mdg)
        assert path1 == path2
        assert path1 == ["top", "l", "bot"]  # "l" < "r" lexicographically

    def test_single_node(self):
        mdg = MDG("one")
        mdg.add_node("only", proc())
        length, path = critical_path(mdg, node_weight=lambda n: 4.2)
        assert length == pytest.approx(4.2)
        assert path == ["only"]

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            critical_path(MDG("void"))

    def test_length_at_least_any_path(self):
        mdg = build_diamond()
        weights = {"top": 1.0, "l": 2.0, "r": 3.0, "bot": 4.0}
        length, _ = critical_path(mdg, node_weight=lambda n: weights[n])
        for branch in ("l", "r"):
            assert length >= weights["top"] + weights[branch] + weights["bot"] - 1e-12


class TestNodeLevels:
    def test_diamond_levels(self):
        levels = node_levels(build_diamond())
        assert levels == {"top": 0, "l": 1, "r": 1, "bot": 2}

    def test_isolated_nodes_at_level_zero(self):
        mdg = MDG("iso")
        mdg.add_node("a", proc())
        mdg.add_node("b", proc())
        assert node_levels(mdg) == {"a": 0, "b": 0}


class TestTransitiveReduction:
    def test_removes_implied_edge(self):
        mdg = MDG("tri")
        for name in ("a", "b", "c"):
            mdg.add_node(name, proc())
        mdg.add_edge("a", "b")
        mdg.add_edge("b", "c")
        mdg.add_edge("a", "c")  # implied by a->b->c
        reduced = transitive_reduction(mdg)
        assert not reduced.has_edge("a", "c")
        assert reduced.n_edges == 2

    def test_keeps_edges_with_transfers(self):
        mdg = MDG("tri")
        for name in ("a", "b", "c"):
            mdg.add_node(name, proc())
        mdg.add_edge("a", "b")
        mdg.add_edge("b", "c")
        mdg.add_edge("a", "c", [ArrayTransfer(8.0, TransferKind.ROW2ROW)])
        reduced = transitive_reduction(mdg)
        assert reduced.has_edge("a", "c")

    def test_diamond_unchanged(self):
        mdg = build_diamond()
        reduced = transitive_reduction(mdg)
        assert reduced.n_edges == mdg.n_edges

    def test_preserves_reachability(self):
        from repro.graph.generators import random_mdg

        mdg = random_mdg(12, seed=3, edge_probability=0.5, transfer_probability=0.0)
        reduced = transitive_reduction(mdg)

        def reach(graph):
            order = graph.topological_order()
            reachable = {n: set() for n in order}
            for n in reversed(order):
                for s in graph.successors(n):
                    reachable[n].add(s)
                    reachable[n] |= reachable[s]
            return reachable

        assert reach(mdg) == reach(reduced)
