"""Tests of the exception hierarchy and the top-level API surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_specializations(self):
        assert issubclass(errors.CycleError, errors.GraphError)
        assert issubclass(errors.PosynomialError, errors.CostModelError)
        assert issubclass(errors.SolverError, errors.AllocationError)
        assert issubclass(errors.InfeasibleError, errors.SolverError)
        assert issubclass(errors.DeadlockError, errors.SimulationError)

    def test_catch_all(self):
        """One except clause suffices for any library failure."""
        from repro.costs.posynomial import Monomial

        with pytest.raises(errors.ReproError):
            Monomial(-1.0)

    def test_library_never_raises_bare_exceptions(self):
        """Spot-check: validation errors are typed, not ValueError."""
        from repro.graph.mdg import MDG

        with pytest.raises(errors.GraphError):
            MDG("g").node("missing")


class TestTopLevelAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_quickstart_surface(self, cm5_16):
        """The README quickstart's names all work from the root."""
        from repro.programs import complex_matmul_program

        bundle = complex_matmul_program(16)
        result = repro.compile_mdg(bundle.mdg, cm5_16)
        baseline = repro.compile_spmd(bundle.mdg, cm5_16)
        assert repro.measure(result).makespan > 0
        assert baseline.style == "SPMD"

    def test_subpackage_alls_resolve(self):
        import repro.allocation
        import repro.analysis
        import repro.codegen
        import repro.costs
        import repro.frontend
        import repro.graph
        import repro.io
        import repro.machine
        import repro.programs
        import repro.runtime
        import repro.scheduling
        import repro.sim
        import repro.utils
        import repro.viz

        for module in (
            repro.allocation,
            repro.analysis,
            repro.codegen,
            repro.costs,
            repro.frontend,
            repro.graph,
            repro.io,
            repro.machine,
            repro.programs,
            repro.runtime,
            repro.scheduling,
            repro.sim,
            repro.utils,
            repro.viz,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
