"""Unit tests for repro.utils.intmath (power-of-two rounding rules)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.intmath import (
    ceil_div,
    is_power_of_two,
    next_power_of_two,
    powers_of_two_upto,
    prev_power_of_two,
    round_to_power_of_two,
)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 1, 0), (1, 1, 1), (7, 2, 4), (8, 2, 4), (9, 2, 5)]
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValidationError):
            ceil_div(1, 0)

    def test_rejects_negative_dividend(self):
        with pytest.raises(ValidationError):
            ceil_div(-1, 2)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("v", [1, 2, 4, 8, 1024, 2**30])
    def test_powers(self, v):
        assert is_power_of_two(v)

    @pytest.mark.parametrize("v", [0, -2, 3, 6, 12, 1023])
    def test_non_powers(self, v):
        assert not is_power_of_two(v)

    def test_bool_is_not_power(self):
        assert not is_power_of_two(True)

    def test_float_is_not_power(self):
        assert not is_power_of_two(4.0)


class TestNextPrevPowerOfTwo:
    @pytest.mark.parametrize("v,expected", [(1, 1), (1.1, 2), (2, 2), (5, 8), (8, 8)])
    def test_next(self, v, expected):
        assert next_power_of_two(v) == expected

    def test_next_below_one(self):
        assert next_power_of_two(0.3) == 1

    @pytest.mark.parametrize("v,expected", [(1, 1), (1.9, 1), (2, 2), (7.9, 4), (8, 8)])
    def test_prev(self, v, expected):
        assert prev_power_of_two(v) == expected

    def test_prev_rejects_below_one(self):
        with pytest.raises(ValidationError):
            prev_power_of_two(0.5)


class TestRoundToPowerOfTwo:
    @pytest.mark.parametrize(
        "v,expected",
        [
            (1.0, 1),
            (1.49, 1),
            (1.5, 2),  # arithmetic midpoint rounds up
            (2.9, 2),
            (3.0, 4),
            (5.9, 4),
            (6.0, 8),
            (6.1, 8),
            (48.0, 64),
            (47.9, 32),
        ],
    )
    def test_midpoint_rule(self, v, expected):
        assert round_to_power_of_two(v) == expected

    def test_rejects_below_one(self):
        with pytest.raises(ValidationError):
            round_to_power_of_two(0.99)

    @given(st.floats(min_value=1.0, max_value=1e9))
    def test_theorem2_factors(self, v):
        """Rounding never changes the value by more than x4/3 or x2/3."""
        rounded = round_to_power_of_two(v)
        assert is_power_of_two(rounded)
        assert rounded >= (2.0 / 3.0) * v * (1 - 1e-12)
        assert rounded <= (4.0 / 3.0) * v * (1 + 1e-12)

    @given(st.integers(min_value=0, max_value=40))
    def test_exact_powers_are_fixed_points(self, k):
        assert round_to_power_of_two(float(2**k)) == 2**k


class TestPowersUpto:
    def test_basic(self):
        assert powers_of_two_upto(1) == [1]
        assert powers_of_two_upto(10) == [1, 2, 4, 8]
        assert powers_of_two_upto(16) == [1, 2, 4, 8, 16]

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            powers_of_two_upto(0)
