"""Property tests of the frontend on randomized loop programs.

Random (but well-formed) loop programs must always lower to valid MDGs
whose wiring matches the dependence analysis, and their generated apps
must always execute correctly.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend.appgen import build_app_graph
from repro.frontend.dependence import flow_dependences
from repro.frontend.ir import LoopProgram
from repro.frontend.lowering import lower_to_mdg
from repro.runtime.executor import ValueExecutor
from repro.runtime.verify import verify_against_reference

SETTINGS = dict(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def loop_programs(draw):
    """A random well-formed square-matrix loop program."""
    n = draw(st.integers(min_value=2, max_value=8))
    n_inits = draw(st.integers(min_value=1, max_value=3))
    n_ops = draw(st.integers(min_value=0, max_value=6))
    prog = LoopProgram("random")
    arrays: list[str] = []
    for k in range(n_inits):
        array = f"I{k}"
        prog.declare(array, n, n)
        prog.loop(f"init{k}", "matinit", writes=array)
        arrays.append(array)
    rng_choice = st.integers(min_value=0, max_value=10_000)
    for k in range(n_ops):
        out = f"T{k}"
        prog.declare(out, n, n)
        kind = ["matadd", "matsub", "matmul"][draw(rng_choice) % 3]
        a = arrays[draw(rng_choice) % len(arrays)]
        b = arrays[draw(rng_choice) % len(arrays)]
        prog.loop(f"op{k}", kind, writes=out, reads=(a, b))
        arrays.append(out)
    return prog


@settings(**SETTINGS)
@given(loop_programs())
def test_lowered_mdg_valid_and_consistent(program):
    mdg = lower_to_mdg(program)
    mdg.validate()
    assert mdg.n_nodes == len(program.loops)
    flow = {
        (d.source, d.target)
        for d in flow_dependences(program)
        if d.kind == "flow"
    }
    mdg_edges_with_transfers = {
        (e.source, e.target) for e in mdg.edges() if e.transfers
    }
    assert flow == mdg_edges_with_transfers


@settings(**SETTINGS)
@given(loop_programs(), st.integers(min_value=1, max_value=4))
def test_generated_app_executes_correctly(program, group):
    app = build_app_graph(program)
    report = ValueExecutor(app).run(
        {name: group for name in app.computational_nodes()}
    )
    verify_against_reference(app, report)


@settings(**SETTINGS)
@given(loop_programs())
def test_transfer_sizes_match_declarations(program):
    mdg = lower_to_mdg(program)
    for edge in mdg.edges():
        for transfer in edge.transfers:
            decl = program.arrays[transfer.label]
            assert transfer.length_bytes == decl.total_bytes


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(loop_programs())
def test_lowered_graphs_allocate(program):
    """Every random program's MDG makes it through the convex solver."""
    from repro.allocation.solver import ConvexSolverOptions, solve_allocation
    from repro.machine.presets import cm5

    mdg = lower_to_mdg(program).normalized()
    allocation = solve_allocation(
        mdg, cm5(8), ConvexSolverOptions(multistart_targets=(2.0,))
    )
    assert allocation.phi > 0
    assert np.all([v >= 1.0 - 1e-9 for v in allocation.processors.values()])
