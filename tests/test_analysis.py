"""Unit tests for metrics, experiment drivers, and reports."""

import pytest

from repro.analysis.comparison import (
    compare_spmd_mpmd,
    phi_vs_tpsa,
    predicted_vs_measured,
    sweep_system_sizes,
)
from repro.analysis.metrics import (
    efficiency,
    relative_deviation,
    serial_time,
    speedup,
)
from repro.analysis.reports import comparison_table, deviation_table, prediction_table
from repro.errors import ValidationError
from repro.graph.generators import fork_join_mdg, paper_example_mdg
from repro.machine.fidelity import HardwareFidelity
from repro.machine.presets import cm5
from repro.programs import complex_matmul_program


class TestMetrics:
    def test_serial_time_sums_costs(self):
        mdg = paper_example_mdg()
        assert serial_time(mdg) == pytest.approx(20.0 + 16.0 + 16.0)

    def test_speedup_and_efficiency(self):
        mdg = paper_example_mdg()
        assert speedup(mdg, 26.0) == pytest.approx(2.0)
        assert efficiency(mdg, 26.0, 4) == pytest.approx(0.5)

    def test_speedup_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            speedup(paper_example_mdg(), 0.0)

    def test_relative_deviation_sign_convention(self):
        # Table 3: positive when T_psa exceeds Phi.
        assert relative_deviation(0.125, 0.136) == pytest.approx(0.088, abs=1e-3)
        assert relative_deviation(0.117, 0.114) < 0

    def test_relative_deviation_rejects_bad_prediction(self):
        with pytest.raises(ValidationError):
            relative_deviation(0.0, 1.0)


class TestComparisons:
    def test_compare_fields_consistent(self):
        mdg = complex_matmul_program(32).mdg
        row = compare_spmd_mpmd(mdg, cm5(16), HardwareFidelity.ideal())
        assert row.processors == 16
        assert row.mpmd_measured <= row.mpmd_predicted * (1 + 1e-9)
        assert row.mpmd_speedup == pytest.approx(
            serial_time(mdg.normalized()) / row.mpmd_measured
        )
        assert row.mpmd_efficiency == pytest.approx(row.mpmd_speedup / 16)

    def test_mpmd_wins_on_complex_mm(self):
        mdg = complex_matmul_program(32).mdg
        row = compare_spmd_mpmd(mdg, cm5(16))
        assert row.mpmd_advantage > 1.0

    def test_sweep_sizes(self):
        mdg = fork_join_mdg(2, seed=0)
        rows = sweep_system_sizes(mdg, cm5(64), (4, 8), HardwareFidelity.ideal())
        assert [r.processors for r in rows] == [4, 8]

    def test_predicted_vs_measured_points(self):
        mdg = complex_matmul_program(32).mdg
        points = predicted_vs_measured(mdg, cm5(8), HardwareFidelity.ideal())
        assert {p.style for p in points} == {"MPMD", "SPMD"}
        for p in points:
            # Ideal hardware: measured <= predicted (self-timed execution).
            assert p.measured <= p.predicted * (1 + 1e-9)
            assert p.normalized_prediction >= 1.0 - 1e-9

    def test_predicted_close_under_cm5_fidelity(self):
        mdg = complex_matmul_program(32).mdg
        points = predicted_vs_measured(mdg, cm5(8), HardwareFidelity.cm5_like())
        for p in points:
            # Figure 9's claim: within ~20% either way.
            assert 0.8 <= p.normalized_prediction <= 1.25

    def test_phi_vs_tpsa_point(self):
        mdg = complex_matmul_program(32).mdg
        point = phi_vs_tpsa(mdg, cm5(8))
        assert point.phi > 0
        assert point.t_psa > 0
        assert abs(point.percent_change) < 50.0


class TestReports:
    def test_comparison_table_renders(self):
        mdg = fork_join_mdg(2, seed=0)
        rows = sweep_system_sizes(mdg, cm5(64), (4,), HardwareFidelity.ideal())
        text = comparison_table(rows)
        assert "MPMD speedup" in text
        assert "forkjoin_2" in text

    def test_prediction_table_renders(self):
        mdg = fork_join_mdg(2, seed=0)
        points = predicted_vs_measured(mdg, cm5(4), HardwareFidelity.ideal())
        text = prediction_table(points)
        assert "pred/meas" in text

    def test_deviation_table_renders(self):
        mdg = fork_join_mdg(2, seed=0)
        text = deviation_table([phi_vs_tpsa(mdg, cm5(4))])
        assert "percent change" in text
        assert "%" in text

    def test_format_table_validates_row_width(self):
        from repro.utils.tables import format_table

        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_format_table_alignment(self):
        from repro.utils.tables import format_table

        text = format_table(["name", "v"], [["x", 1.0], ["longer", 2.0]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width
