"""Unit tests for SVG Gantt export."""

import pytest

from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.errors import ValidationError
from repro.graph.generators import paper_example_mdg
from repro.scheduling.psa import PSAOptions, prioritized_schedule
from repro.scheduling.schedule import Schedule
from repro.viz.svg import save_schedule_svg, schedule_svg


@pytest.fixture
def schedule(machine4):
    mdg = paper_example_mdg().normalized()
    allocation = solve_allocation(
        mdg, machine4, ConvexSolverOptions(multistart_targets=(2.0,))
    )
    return prioritized_schedule(
        mdg, allocation.processors, machine4, PSAOptions(processor_bound="machine")
    )


class TestScheduleSvg:
    def test_wellformed_document(self, schedule):
        svg = schedule_svg(schedule)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<svg") == 1

    def test_one_box_per_processor_occupancy(self, schedule):
        svg = schedule_svg(schedule, show_labels=False)
        boxes = svg.count("<title>")
        expected = sum(
            e.width for e in schedule.entries.values() if e.duration > 0
        )
        assert boxes == expected

    def test_processor_lanes_labelled(self, schedule):
        svg = schedule_svg(schedule)
        for proc in range(4):
            assert f">P{proc}</text>" in svg

    def test_makespan_in_header(self, schedule):
        assert f"{schedule.makespan:.4g}s" in schedule_svg(schedule)

    def test_deterministic(self, schedule):
        assert schedule_svg(schedule) == schedule_svg(schedule)

    def test_node_names_escaped(self, machine4):
        from repro.costs.processing import AmdahlProcessingCost
        from repro.graph.mdg import MDG
        from repro.scheduling.schedule import ScheduledNode

        mdg = MDG("esc")
        mdg.add_node("a<b>&c", AmdahlProcessingCost(0.1, 1.0))
        schedule = Schedule(mdg=mdg, total_processors=1)
        schedule.add(ScheduledNode("a<b>&c", 0.0, 1.0, (0,)))
        svg = schedule_svg(schedule)
        assert "a&lt;b&gt;&amp;c" in svg
        assert "a<b>" not in svg

    def test_empty_schedule_rejected(self, machine4):
        from repro.graph.generators import paper_example_mdg as factory

        empty = Schedule(mdg=factory(), total_processors=4)
        with pytest.raises(ValidationError, match="empty"):
            schedule_svg(empty)

    def test_narrow_width_rejected(self, schedule):
        with pytest.raises(ValidationError):
            schedule_svg(schedule, width=50)

    def test_save_to_file(self, schedule, tmp_path):
        path = tmp_path / "gantt.svg"
        save_schedule_svg(schedule, path)
        assert path.read_text().startswith("<svg")
