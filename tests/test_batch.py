"""Batch compiler: executors, manifests, error isolation, CLI."""

from __future__ import annotations

import json

import pytest

from repro.batch import (
    BatchCompiler,
    BatchJob,
    load_manifest,
    manifest_problems,
)
from repro.cli import main
from repro.errors import IngestError, ReproError
from repro.graph.generators import layered_random_mdg
from repro.machine.presets import cm5

SMALL = {"kind": "program", "name": "complex", "n": 16}


def small_job(job_id="j", **kwargs):
    kwargs.setdefault("processors", 8)
    return BatchJob(job_id=job_id, source=dict(SMALL), **kwargs)


# ----- jobs and manifests ---------------------------------------------------


def test_from_mdg_round_trips_the_graph(machine8):
    mdg = layered_random_mdg(3, 2, seed=5)
    job = BatchJob.from_mdg(mdg, machine_params=machine8)
    assert job.job_id == mdg.name
    assert job.source["kind"] == "doc"
    report = BatchCompiler().run([job])
    assert report.results[0].ok
    assert set(report.results[0].processors) == set(
        mdg.normalized().node_names()
    )


def test_manifest_problems_accepts_valid_doc(tmp_path):
    doc = {
        "schema_version": 1,
        "jobs": [{"id": "a", "program": "complex", "n": 16}],
    }
    assert manifest_problems(doc, base_dir=tmp_path) == []


@pytest.mark.parametrize(
    "doc,needle",
    [
        ([], "must be a JSON object"),
        ({"jobs": []}, "non-empty array"),
        ({"schema_version": 99, "jobs": [{"program": "complex"}]},
         "unsupported value"),
        ({"jobs": [{"program": "complex", "graph": "x.json"}]},
         "exactly one of"),
        ({"jobs": [{}]}, "exactly one of"),
        ({"jobs": [{"program": "nosuch"}]}, "unknown built-in"),
        ({"jobs": [{"program": "complex", "n": 0}]}, "positive integer"),
        ({"jobs": [{"program": "complex", "machine": "cray"}]},
         "unknown preset"),
        ({"jobs": [{"program": "complex", "fidelity": "exact"}]},
         "fidelity"),
        ({"jobs": [{"program": "complex", "frobnicate": 1}]},
         "unknown job field"),
        ({"jobs": [{"id": "x", "program": "complex"},
                   {"id": "x", "program": "fft2d"}]}, "duplicate job id"),
        ({"jobs": [{"graph": "missing.json"}]}, "file not found"),
    ],
)
def test_manifest_problems_rejects(doc, needle, tmp_path):
    problems = manifest_problems(doc, base_dir=tmp_path)
    assert problems and any(needle in p for p in problems), problems


def test_load_manifest_raises_with_diagnostics(tmp_path):
    path = tmp_path / "m.json"
    path.write_text(json.dumps({"jobs": [{"graph": "missing.json"}]}))
    with pytest.raises(IngestError) as err:
        load_manifest(path)
    assert any("file not found" in d for d in err.value.diagnostics)


def test_load_manifest_resolves_graph_relative_to_manifest(tmp_path, machine8):
    from repro.graph.serialization import save_mdg

    mdg = layered_random_mdg(2, 2, seed=3)
    (tmp_path / "graphs").mkdir()
    save_mdg(mdg, tmp_path / "graphs" / "g.json")
    path = tmp_path / "m.json"
    path.write_text(
        json.dumps(
            {"jobs": [{"id": "g", "graph": "graphs/g.json",
                       "machine": "cm5", "processors": 8}]}
        )
    )
    jobs = load_manifest(path)
    assert jobs[0].source["kind"] == "file"
    report = BatchCompiler().run(jobs)
    assert report.results[0].ok, report.results[0].error


# ----- executors ------------------------------------------------------------


def test_serial_and_parallel_results_are_bit_identical(tmp_path):
    jobs = [
        BatchJob.from_mdg(
            layered_random_mdg(2, 2, seed=s).normalized(),
            job_id=f"g{s}",
            machine_params=cm5(8),
        )
        for s in (1, 2, 3)
    ]
    serial = BatchCompiler(workers=0, cache_dir=str(tmp_path / "a")).run(jobs)
    parallel = BatchCompiler(workers=2, cache_dir=str(tmp_path / "b")).run(jobs)
    assert [r.job_id for r in serial.results] == [r.job_id for r in parallel.results]
    for a, b in zip(serial.results, parallel.results):
        assert a.ok and b.ok
        assert a.processors == b.processors
        assert a.phi == b.phi
        assert a.predicted_makespan == b.predicted_makespan


def test_job_error_is_isolated():
    jobs = [
        BatchJob(job_id="bad", source={"kind": "file", "path": "/nope.json"}),
        small_job("good"),
    ]
    report = BatchCompiler().run(jobs)
    assert [r.ok for r in report.results] == [False, True]
    bad = report.results[0]
    assert bad.error_type == "IngestError" and bad.error
    assert report.n_failed == 1 and report.n_ok == 1


def test_unknown_source_kind_is_an_error_record():
    report = BatchCompiler().run(
        [BatchJob(job_id="x", source={"kind": "telepathy"})]
    )
    assert not report.results[0].ok
    assert "telepathy" in report.results[0].error


def test_negative_workers_rejected():
    with pytest.raises(ReproError):
        BatchCompiler(workers=-1)


def test_simulate_records_measured_makespan():
    report = BatchCompiler().run([small_job(simulate=True)])
    result = report.results[0]
    assert result.ok
    assert result.measured_makespan is not None
    assert result.measured_makespan > 0


def test_spmd_style_jobs_run():
    report = BatchCompiler().run([small_job(style="SPMD", simulate=True)])
    result = report.results[0]
    assert result.ok
    assert result.phi is None  # SPMD has no convex objective
    assert result.cache == "off"
    assert result.predicted_makespan > 0


def test_report_aggregates(tmp_path):
    report = BatchCompiler(cache_dir=str(tmp_path)).run(
        [small_job("a"), small_job("b")]
    )
    assert report.cache_count("miss") == 1
    assert report.cache_count("hit") == 1
    doc = report.to_dict()
    assert doc["jobs"] == 2 and doc["failed"] == 0
    assert doc["jobs_per_second"] > 0
    assert doc["latency_p95"] >= doc["latency_p50"] > 0
    text = report.render_text()
    assert "jobs/s" in text and "1 hit" in text


# ----- CLI ------------------------------------------------------------------


def write_manifest(tmp_path, jobs):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps({"schema_version": 1, "jobs": jobs}))
    return path


def test_cli_batch_smoke(tmp_path, capsys):
    path = write_manifest(
        tmp_path,
        [
            {"id": "a", "program": "complex", "n": 16, "processors": 8},
            {"id": "b", "program": "complex", "n": 16, "processors": 8},
        ],
    )
    out_path = tmp_path / "report.json"
    status = main(
        [
            "batch", str(path),
            "--cache-dir", str(tmp_path / "cache"),
            "--resume",
            "--output", str(out_path),
        ]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "jobs/s" in out
    doc = json.loads(out_path.read_text())
    assert doc["ok"] == 2
    assert doc["cache_hits"] == 1  # b is isomorphic to a


def test_cli_batch_preflight_rejects_bad_manifest(tmp_path, capsys):
    path = write_manifest(tmp_path, [{"id": "a", "graph": "missing.json"}])
    status = main(["batch", str(path)])
    err = capsys.readouterr().err
    assert status == 2
    assert "file not found" in err


def test_cli_batch_exit_1_on_failed_job(tmp_path, monkeypatch):
    from repro.graph.serialization import save_mdg

    save_mdg(layered_random_mdg(2, 2, seed=1), tmp_path / "g.json")
    path = write_manifest(
        tmp_path,
        [
            {"id": "good", "program": "complex", "n": 16, "processors": 8},
            {"id": "bad", "graph": "g.json", "processors": 8},
        ],
    )
    # Sabotage the graph after pre-flight would have passed: truncate it.
    orig = __import__("repro.batch.compiler", fromlist=["_resolve_mdg"])
    real = orig._resolve_mdg

    def flaky(source):
        if source.get("kind") == "file":
            raise ReproError("boom")
        return real(source)

    monkeypatch.setattr(orig, "_resolve_mdg", flaky)
    assert main(["batch", str(path)]) == 1


def test_cli_batch_resume_requires_cache_dir(tmp_path):
    path = write_manifest(
        tmp_path, [{"id": "a", "program": "complex", "n": 16}]
    )
    with pytest.raises(SystemExit):
        main(["batch", str(path), "--resume"])
