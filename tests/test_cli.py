"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import paper_example_mdg
from repro.graph.serialization import save_mdg


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "cm5" in out
        assert "strassen" in out

    def test_compile(self, capsys):
        assert main(["compile", "--program", "complex", "--n", "16", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "Phi" in out
        assert "predicted makespan" in out
        assert "legend:" in out

    def test_compile_spmd(self, capsys):
        assert (
            main(["compile", "--program", "complex", "--n", "16", "-p", "4", "--spmd"])
            == 0
        )
        out = capsys.readouterr().out
        assert "SPMD" in out
        assert "Phi" not in out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--program",
                    "fft2d",
                    "--n",
                    "16",
                    "-p",
                    "4",
                    "--fidelity",
                    "ideal",
                    "--gantt",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "measured" in out
        assert "% of predicted" in out

    def test_experiment_table3(self, capsys):
        assert (
            main(
                [
                    "experiment",
                    "table3",
                    "--program",
                    "complex",
                    "--n",
                    "16",
                    "--sizes",
                    "4,8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "percent change" in out

    def test_experiment_fig8(self, capsys):
        assert (
            main(
                [
                    "experiment",
                    "fig8",
                    "--program",
                    "reduction",
                    "--n",
                    "16",
                    "--sizes",
                    "4",
                ]
            )
            == 0
        )
        assert "MPMD speedup" in capsys.readouterr().out

    def test_experiment_fig9(self, capsys):
        assert (
            main(
                [
                    "experiment",
                    "fig9",
                    "--program",
                    "pipeline",
                    "--n",
                    "16",
                    "--sizes",
                    "4",
                ]
            )
            == 0
        )
        assert "pred/meas" in capsys.readouterr().out

    def test_solve_from_file(self, tmp_path, capsys):
        path = tmp_path / "example.json"
        save_mdg(paper_example_mdg(), path)
        assert main(["solve", str(path), "--machine", "zero-comm", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "Phi" in out
        assert "N1" in out

    def test_unknown_program(self):
        with pytest.raises(SystemExit, match="unknown program"):
            main(["compile", "--program", "nonesuch"])

    def test_unknown_machine(self):
        with pytest.raises(SystemExit, match="unknown machine"):
            main(["compile", "--machine", "cray"])

    def test_unknown_fidelity(self):
        with pytest.raises(SystemExit, match="unknown fidelity"):
            main(
                [
                    "simulate",
                    "--program",
                    "complex",
                    "--n",
                    "16",
                    "-p",
                    "4",
                    "--fidelity",
                    "quantum",
                ]
            )
