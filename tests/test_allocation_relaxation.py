"""Pinning down the 1D network-delay relaxation's semantics.

For 1D transfers the symbolic model replaces ``1/max(p_i, p_j)`` with the
monomial upper bound ``(p_i p_j)^(-1/2)`` (docs/theory.md §1). These
tests nail the consequences:

* with ``t_n = 0`` (the CM-5) the relaxation is inert and Phi is a true
  lower bound on every integer allocation's cost;
* with ``t_n > 0`` the relaxed Phi is *conservative*: it can only
  overestimate, never underestimate, the exact cost of the solution it
  returns.
"""

import pytest

from repro.allocation.exhaustive import exhaustive_best_allocation
from repro.allocation.formulation import ConvexAllocationProblem
from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.costs.node_weights import MDGCostModel
from repro.costs.transfer import TransferCostParameters
from repro.graph.generators import fork_join_mdg
from repro.machine.parameters import MachineParameters

SOLVER = ConvexSolverOptions(multistart_targets=(4.0,))


def machine_with_tn(t_n: float) -> MachineParameters:
    return MachineParameters(
        "net",
        16,
        TransferCostParameters(t_ss=1e-4, t_ps=5e-9, t_sr=8e-5, t_pr=4e-9, t_n=t_n),
    )


class TestWithZeroNetworkDelay:
    def test_phi_lower_bounds_integer_allocations(self):
        machine = machine_with_tn(0.0)
        mdg = fork_join_mdg(3, seed=4).normalized()
        allocation = solve_allocation(mdg, machine, SOLVER)
        oracle = exhaustive_best_allocation(mdg, machine)
        assert allocation.phi <= oracle.phi * (1 + 1e-4)


class TestWithPositiveNetworkDelay:
    @pytest.mark.parametrize("t_n", [1e-9, 1e-7])
    def test_relaxed_phi_conservative_at_its_solution(self, t_n):
        """Phi >= the exact max(A, C) of the returned allocation."""
        machine = machine_with_tn(t_n)
        mdg = fork_join_mdg(3, seed=4).normalized()
        allocation = solve_allocation(mdg, machine, SOLVER)
        cm = MDGCostModel(mdg, machine.transfer_model())
        exact = cm.makespan_lower_bound(allocation.processors, 16)
        assert allocation.phi >= exact * (1 - 1e-6)

    def test_relaxation_exact_for_equal_groups(self):
        """When the solution uses equal group sizes on a 1D edge, the
        geometric mean equals the max and the gap closes."""
        machine = machine_with_tn(1e-7)
        mdg = fork_join_mdg(1, seed=0).normalized()  # fork -> branch -> join
        allocation = solve_allocation(mdg, machine, SOLVER)
        groups = [
            allocation.processors[n]
            for n in mdg.node_names()
            if not mdg.node(n).is_dummy
        ]
        if max(groups) / min(groups) < 1.001:  # symmetric solution
            cm = MDGCostModel(mdg, machine.transfer_model())
            exact = cm.makespan_lower_bound(allocation.processors, 16)
            assert allocation.phi == pytest.approx(exact, rel=1e-3)

    def test_network_delay_raises_phi(self):
        mdg = fork_join_mdg(3, seed=4).normalized()
        phi_free = solve_allocation(mdg, machine_with_tn(0.0), SOLVER).phi
        phi_slow = solve_allocation(mdg, machine_with_tn(1e-7), SOLVER).phi
        assert phi_slow > phi_free

    def test_formulation_counts_network_terms(self):
        """t_n > 0 adds monomials to the stacked term arrays."""
        mdg = fork_join_mdg(2, seed=0).normalized()
        with_net = ConvexAllocationProblem(mdg, machine_with_tn(1e-8))
        without = ConvexAllocationProblem(mdg, machine_with_tn(0.0))
        assert with_net._bt_coeffs.size > without._bt_coeffs.size
