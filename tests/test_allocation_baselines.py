"""Unit tests for the baseline allocators."""

import pytest

from repro.allocation.baselines import (
    greedy_critical_path_allocation,
    serial_allocation,
    spmd_allocation,
    uniform_allocation,
)
from repro.allocation.solver import solve_allocation
from repro.graph.generators import fork_join_mdg, paper_example_mdg
from repro.utils.intmath import is_power_of_two


class TestSpmdAllocation:
    def test_all_nodes_all_processors(self, cm5_16):
        result = spmd_allocation(fork_join_mdg(3, seed=0), cm5_16)
        assert all(v == 16 for v in result.processors.values())
        assert result.average_finish_time is not None
        assert result.critical_path_time is not None

    def test_phi_none_for_baselines(self, cm5_16):
        assert spmd_allocation(fork_join_mdg(2, seed=0), cm5_16).phi is None


class TestSerialAllocation:
    def test_all_ones(self, cm5_16):
        result = serial_allocation(fork_join_mdg(3, seed=0), cm5_16)
        assert all(v == 1 for v in result.processors.values())


class TestUniformAllocation:
    def test_divides_by_width(self, cm5_16):
        # fork_join(4): widest level has 4 branches -> 16/4 = 4 each.
        result = uniform_allocation(fork_join_mdg(4, seed=0), cm5_16)
        assert all(v == 4 for v in result.processors.values())

    def test_power_of_two_floor(self, cm5_16):
        # width 3 -> 16//3 = 5 -> floor to 4.
        result = uniform_allocation(fork_join_mdg(3, seed=0), cm5_16)
        assert all(v == 4 for v in result.processors.values())

    def test_width_wider_than_machine(self, machine4):
        result = uniform_allocation(fork_join_mdg(10, seed=0), machine4)
        assert all(v == 1 for v in result.processors.values())


class TestGreedyHeuristic:
    def test_power_of_two_allocations(self, cm5_16):
        result = greedy_critical_path_allocation(fork_join_mdg(3, seed=1), cm5_16)
        for value in result.processors.values():
            assert is_power_of_two(int(value))

    def test_never_exceeds_machine(self, machine4):
        result = greedy_critical_path_allocation(fork_join_mdg(2, seed=1), machine4)
        assert max(result.processors.values()) <= 4

    def test_improves_on_serial(self, machine4):
        mdg = paper_example_mdg()
        greedy = greedy_critical_path_allocation(mdg, machine4)
        serial = serial_allocation(mdg, machine4)
        assert greedy.makespan_lower_bound <= serial.makespan_lower_bound

    def test_convex_at_least_as_good(self, machine4):
        """The exact method must weakly dominate the prior-work heuristic."""
        mdg = paper_example_mdg().normalized()
        greedy = greedy_critical_path_allocation(mdg, machine4)
        convex = solve_allocation(mdg, machine4)
        assert convex.phi <= greedy.makespan_lower_bound * (1 + 1e-9)

    def test_respects_max_rounds(self, cm5_16):
        result = greedy_critical_path_allocation(
            fork_join_mdg(2, seed=1), cm5_16, max_rounds=1
        )
        assert result.info["rounds"] <= 1
        # At most one doubling happened.
        assert sum(result.processors.values()) <= len(result.processors) + 1
