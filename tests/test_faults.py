"""Fault injection: specs, decision streams, engine integration, repair."""


import pytest

from repro import obs
from repro.codegen.program import ComputeOp, MPMDProgram, RecvOp, SendOp
from repro.errors import DeadlockError, FaultSpecError, RecoveryError
from repro.faults import (
    FaultInjector,
    FaultSession,
    FaultSpec,
    ProcessorFailure,
    load_fault_spec,
    repair_schedule,
    save_fault_spec,
)
from repro.machine.presets import cm5
from repro.pipeline import compile_mdg, measure
from repro.programs import complex_matmul_program
from repro.sim.engine import MachineSimulator


@pytest.fixture
def telemetry():
    t = obs.Telemetry(sinks=[obs.MemorySink()])
    with obs.use(t):
        yield t


def two_node_program(compute_cost: float = 1.0) -> MPMDProgram:
    """proc 0 computes a then sends to proc 1, which computes b."""
    program = MPMDProgram(total_processors=2)
    program.streams[0] = [
        ComputeOp("a", compute_cost),
        SendOp("a", "b", 0.1, 0.0),
    ]
    program.streams[1] = [
        RecvOp("a", "b", 0.1, 0.0),
        ComputeOp("b", compute_cost),
    ]
    program.senders[("a", "b")] = (0,)
    program.receivers[("a", "b")] = (1,)
    return program


class TestFaultSpec:
    def test_defaults_are_benign(self):
        assert FaultSpec().is_benign
        assert not FaultSpec(transient_rate=0.1).is_benign
        assert not FaultSpec(
            processor_failures=(ProcessorFailure(0, 1.0),)
        ).is_benign

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transient_rate": 1.5},
            {"transient_rate": -0.1},
            {"drop_rate": 1.0},
            {"link_spike_rate": 2.0},
            {"link_spike_factor": 0.5},
            {"slowdown": {0: 0.5}},
            {"slowdown": {-1: 2.0}},
            {"retry_backoff": -1.0},
            {"attempt_fraction": 1.5},
            {"max_retries": -1},
            {
                "processor_failures": (
                    ProcessorFailure(0, 1.0),
                    ProcessorFailure(0, 2.0),
                )
            },
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(FaultSpecError):
            FaultSpec(**kwargs)

    def test_processor_failure_validation(self):
        with pytest.raises(FaultSpecError):
            ProcessorFailure(-1, 0.0)
        with pytest.raises(FaultSpecError):
            ProcessorFailure(0, -1.0)

    def test_round_trip_dict(self):
        spec = FaultSpec(
            seed=11,
            slowdown={3: 1.5},
            transient_rate=0.01,
            retry_backoff=1e-4,
            link_spike_rate=0.02,
            drop_rate=0.005,
            processor_failures=(ProcessorFailure(2, 0.25),),
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_file(self, tmp_path):
        spec = FaultSpec(seed=3, transient_rate=0.2, max_retries=5)
        path = tmp_path / "faults.json"
        save_fault_spec(spec, path)
        assert load_fault_spec(path) == spec

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(FaultSpecError, match="not valid JSON"):
            load_fault_spec(path)
        with pytest.raises(FaultSpecError, match="cannot read"):
            load_fault_spec(tmp_path / "missing.json")

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown"):
            FaultSpec.from_dict({"seed": 1, "typo_section": {}})

    def test_with_seed(self):
        spec = FaultSpec(seed=1, transient_rate=0.1)
        reseeded = spec.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.transient_rate == spec.transient_rate


class TestFaultSession:
    def test_decision_streams_are_deterministic(self):
        spec = FaultSpec(seed=5, transient_rate=0.4, drop_rate=0.3)
        injector = FaultInjector(spec)
        draws1 = [
            (injector.session().compute_plan(q), injector.session().message_plan(q))
            for q in range(4)
        ]
        draws2 = [
            (injector.session().compute_plan(q), injector.session().message_plan(q))
            for q in range(4)
        ]
        assert draws1 == draws2

    def test_per_processor_streams_are_independent(self):
        spec = FaultSpec(seed=5, transient_rate=0.4)
        session = FaultSession(spec)
        a = [session.compute_plan(0) for _ in range(50)]
        b = [session.compute_plan(1) for _ in range(50)]
        assert a != b  # astronomically unlikely to collide

    def test_retransmits_bounded(self):
        spec = FaultSpec(seed=1, drop_rate=0.9, max_retransmits=2)
        session = FaultSession(spec)
        for _ in range(200):
            assert session.message_plan(0).retransmits <= 2

    def test_exhaustion_after_budget(self):
        spec = FaultSpec(seed=1, transient_rate=0.999, max_retries=0)
        session = FaultSession(spec)
        plans = [session.compute_plan(0) for _ in range(20)]
        assert any(p.exhausted for p in plans)
        assert all(p.failures <= 0 for p in plans if not p.exhausted)

    def test_kernel_plan_independent_of_order(self):
        spec = FaultSpec(seed=2, transient_rate=0.5)
        session = FaultSession(spec)
        forward = [session.kernel_plan("node", r) for r in range(8)]
        backward = [session.kernel_plan("node", r) for r in reversed(range(8))]
        assert forward == list(reversed(backward))

    def test_backoff_grows_exponentially(self):
        spec = FaultSpec(seed=0, transient_rate=0.9, max_retries=10, retry_backoff=1.0)
        session = FaultSession(spec)
        plan = next(
            p for p in (session.compute_plan(0) for _ in range(100)) if p.failures >= 3
        )
        # 1 + 2 + 4 + ... for the first `failures` retries
        assert plan.backoff_total == sum(2.0**k for k in range(plan.failures))


class TestEngineFaults:
    def test_benign_spec_matches_fault_free_run(self):
        program = two_node_program()
        clean = MachineSimulator().run(program)
        faulted = MachineSimulator(faults=FaultSpec(seed=1)).run(
            two_node_program()
        )
        assert faulted.makespan == clean.makespan
        assert not faulted.halted
        assert faulted.info["completed_nodes"] == ["a", "b"]
        assert faulted.info["unfinished_nodes"] == []

    def test_slowdown_scales_local_processing(self):
        base = MachineSimulator().run(two_node_program()).makespan
        slow = MachineSimulator(
            faults=FaultSpec(slowdown={0: 2.0, 1: 2.0})
        ).run(two_node_program())
        assert slow.makespan == pytest.approx(2.0 * base)

    def test_scheduled_processor_failure_halts(self):
        spec = FaultSpec(processor_failures=(ProcessorFailure(0, 0.5),))
        result = MachineSimulator(faults=spec).run(two_node_program())
        # proc 0 finishes 'a' (started before t=0.5) but dies before the
        # send, so proc 1 starves and the run halts.
        assert result.halted
        assert result.failed_processors == (0,)
        assert result.info["completed_nodes"] == ["a"]
        assert result.info["unfinished_nodes"] == ["b"]
        assert result.info["failure_times"][0] >= 0.5

    def test_failure_after_completion_is_harmless(self):
        spec = FaultSpec(processor_failures=(ProcessorFailure(0, 100.0),))
        result = MachineSimulator(faults=spec).run(two_node_program())
        assert not result.halted
        assert result.failed_processors == ()

    def test_fault_trace_events_emitted(self):
        spec = FaultSpec(processor_failures=(ProcessorFailure(0, 0.5),))
        result = MachineSimulator(faults=spec).run(two_node_program())
        kinds = {e.kind for e in result.trace}
        assert "fault" in kinds

    def test_faulted_run_is_reproducible(self):
        spec = FaultSpec(
            seed=9,
            transient_rate=0.2,
            retry_backoff=0.01,
            link_spike_rate=0.2,
            drop_rate=0.2,
        )
        r1 = MachineSimulator(faults=spec).run(two_node_program())
        r2 = MachineSimulator(faults=spec).run(two_node_program())
        assert r1.makespan == r2.makespan
        assert r1.info == r2.info

    def test_different_fault_seeds_differ(self):
        makespans = {
            MachineSimulator(
                faults=FaultSpec(seed=s, transient_rate=0.4, retry_backoff=0.05)
            )
            .run(two_node_program())
            .makespan
            for s in range(6)
        }
        assert len(makespans) > 1

    def test_retry_exhaustion_escalates_to_processor_loss(self):
        spec = FaultSpec(seed=0, transient_rate=0.999, max_retries=0)
        result = MachineSimulator(faults=spec).run(two_node_program())
        assert result.halted
        assert len(result.failed_processors) >= 1

    def test_rejects_bad_faults_argument(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="FaultSpec"):
            MachineSimulator(faults={"seed": 1})

    def test_fault_counters(self, telemetry):
        spec = FaultSpec(processor_failures=(ProcessorFailure(0, 0.5),))
        MachineSimulator(faults=spec).run(two_node_program())
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["faults.processors_lost"] == 1


class TestDeadlockContext:
    def test_message_names_the_stalled_processors(self):
        """Satellite: the deadlock error explains who waits on which tag."""
        program = MPMDProgram(total_processors=2)
        program.streams[0] = [
            RecvOp("b", "a", 0.0, 0.0),
            ComputeOp("a", 0.0),
            SendOp("a", "b", 0.0, 0.0),
        ]
        program.streams[1] = [
            RecvOp("a", "b", 0.0, 0.0),
            ComputeOp("b", 0.0),
            SendOp("b", "a", 0.0, 0.0),
        ]
        program.senders[("a", "b")] = (0,)
        program.receivers[("a", "b")] = (1,)
        program.senders[("b", "a")] = (1,)
        program.receivers[("b", "a")] = (0,)
        with pytest.raises(DeadlockError) as excinfo:
            MachineSimulator().run(program)
        message = str(excinfo.value)
        assert "no progress" in message
        assert "proc 0" in message and "proc 1" in message
        assert "blocked on recv tag b->a" in message
        assert "blocked on recv tag a->b" in message
        assert "unposted send" in message


class TestScheduleRepair:
    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_mdg(complex_matmul_program(16).mdg, cm5(8))

    def test_trivial_when_everything_completed(self, compiled):
        done = [
            n
            for n in compiled.mdg.node_names()
            if not compiled.mdg.node(n).is_dummy
        ]
        repair = repair_schedule(
            compiled.schedule,
            compiled.machine,
            failed_processors=[0],
            completed_nodes=done,
            failure_time=1.0,
        )
        assert repair.trivial
        assert repair.report.residual_makespan == 0.0
        assert repair.report.repaired_makespan == 1.0

    def test_residual_rescheduled_on_survivors(self, compiled):
        repair = repair_schedule(
            compiled.schedule,
            compiled.machine,
            failed_processors=[0, 1],
            completed_nodes=[],
            failure_time=0.0,
        )
        assert not repair.trivial
        survivors = set(repair.report.survivors)
        assert survivors == set(range(2, 8))
        for entry in repair.physical_schedule:
            assert set(entry.processors) <= survivors
        # every non-dummy node is rescheduled
        expected = {
            n
            for n in compiled.mdg.node_names()
            if not compiled.mdg.node(n).is_dummy
        }
        assert set(repair.report.rescheduled_nodes) == expected

    def test_repair_overhead_included(self, compiled):
        repair = repair_schedule(
            compiled.schedule,
            compiled.machine,
            failed_processors=[0],
            completed_nodes=[],
            failure_time=2.0,
            repair_overhead=0.5,
        )
        report = repair.report
        assert report.repaired_makespan == pytest.approx(
            2.0 + 0.5 + report.residual_makespan
        )

    def test_no_survivors_raises(self, compiled):
        with pytest.raises(RecoveryError, match="all .* processors failed"):
            repair_schedule(
                compiled.schedule,
                compiled.machine,
                failed_processors=range(8),
                completed_nodes=[],
                failure_time=0.0,
            )

    def test_missing_allocation_raises(self, compiled):
        stripped_info = dict(compiled.schedule.info)
        stripped_info.pop("allocation", None)
        import copy

        schedule = copy.copy(compiled.schedule)
        schedule.info = stripped_info
        with pytest.raises(RecoveryError, match="allocation"):
            repair_schedule(
                schedule,
                compiled.machine,
                failed_processors=[0],
                completed_nodes=[],
                failure_time=0.0,
            )

    def test_recovery_telemetry(self, compiled, telemetry):
        repair_schedule(
            compiled.schedule,
            compiled.machine,
            failed_processors=[0],
            completed_nodes=[],
            failure_time=0.0,
        )
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["recovery.repairs"] == 1
        sink = telemetry.sinks[0]
        names = {e.get("name") for e in sink.events}
        assert "recovery.report" in names


class TestMeasureWithFaults:
    def test_measure_passes_faults_through(self):
        compiled = compile_mdg(complex_matmul_program(16).mdg, cm5(8))
        nominal = measure(compiled, record_trace=False)
        spec = FaultSpec(
            processor_failures=(ProcessorFailure(0, nominal.makespan * 0.3),)
        )
        faulted = measure(compiled, record_trace=False, faults=spec)
        assert faulted.halted
        assert faulted.failed_processors == (0,)
        assert set(faulted.info["completed_nodes"]).isdisjoint(
            faulted.info["unfinished_nodes"]
        )
