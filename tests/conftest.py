"""Shared fixtures: small machines and programs sized for fast tests."""

from __future__ import annotations

import pytest

from repro.costs.transfer import TransferCostParameters
from repro.machine.parameters import MachineParameters
from repro.machine.presets import cm5


@pytest.fixture
def machine4() -> MachineParameters:
    """Four processors, zero communication cost."""
    return MachineParameters("m4", 4, TransferCostParameters.zero())


@pytest.fixture
def machine8() -> MachineParameters:
    """Eight processors with mild communication costs."""
    return MachineParameters(
        "m8",
        8,
        TransferCostParameters(
            t_ss=1.0e-4, t_ps=5.0e-9, t_sr=8.0e-5, t_pr=4.0e-9, t_n=1.0e-9
        ),
    )


@pytest.fixture
def cm5_16() -> MachineParameters:
    """The paper's CM-5 at the smallest evaluated partition size."""
    return cm5(16)
