"""Deadline budgets, retry policies, and the circuit breaker.

The deadline tests drive virtual clocks (no sleeping); the pipeline
integration tests prove the ambient deadline actually cuts off each
cooperative check point (allocator, PSA, simulator) with the right stage
stamped on the exception.
"""

import pytest

from repro import obs
from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.errors import DeadlineExceeded, ValidationError
from repro.graph.generators import paper_example_mdg
from repro.machine.presets import cm5
from repro.pipeline import compile_mdg, measure
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    check_deadline,
    current_deadline,
    deadline_scope,
    install_breaker,
    maybe_breaker,
    reset_breakers,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValidationError):
            Deadline(0.0)
        with pytest.raises(ValidationError):
            Deadline(-1.0)

    def test_elapsed_remaining_expired(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        assert d.remaining() == 10.0
        assert not d.expired()
        clock.advance(4.0)
        assert d.elapsed() == 4.0
        assert d.remaining() == 6.0
        clock.advance(7.0)
        assert d.expired()
        assert d.remaining() == 0.0

    def test_check_raises_with_stage_and_elapsed(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        d.check("allocate")  # under budget: no-op
        clock.advance(2.5)
        with pytest.raises(DeadlineExceeded) as excinfo:
            d.check("allocate")
        assert excinfo.value.stage == "allocate"
        assert excinfo.value.elapsed == 2.5
        assert "allocate" in str(excinfo.value)

    def test_scope_installs_and_restores(self):
        assert current_deadline() is None
        check_deadline("anywhere")  # no ambient deadline: no-op
        d = Deadline(5.0, clock=FakeClock())
        with deadline_scope(d):
            assert current_deadline() is d
            with deadline_scope(None):  # None nests transparently
                assert current_deadline() is d
        assert current_deadline() is None

    def test_check_deadline_uses_ambient(self):
        clock = FakeClock()
        with deadline_scope(Deadline(1.0, clock=clock)):
            clock.advance(2.0)
            with pytest.raises(DeadlineExceeded) as excinfo:
                check_deadline("simulate")
        assert excinfo.value.stage == "simulate"

    def test_scope_restores_after_exception(self):
        clock = FakeClock()
        with pytest.raises(DeadlineExceeded):
            with deadline_scope(Deadline(1.0, clock=clock)):
                clock.advance(2.0)
                check_deadline()
        assert current_deadline() is None


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValidationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.0)

    def test_delays_deterministic_per_seed(self):
        a = RetryPolicy(max_attempts=5, base_delay=0.1, seed=7).delays()
        b = RetryPolicy(max_attempts=5, base_delay=0.1, seed=7).delays()
        c = RetryPolicy(max_attempts=5, base_delay=0.1, seed=8).delays()
        assert a == b
        assert a != c
        assert len(a) == 5

    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, max_delay=4.0,
            multiplier=2.0, jitter=0.0,
        )
        assert policy.delays() == (1.0, 2.0, 4.0, 4.0, 4.0, 4.0)

    def test_zero_attempts_and_zero_delay(self):
        assert RetryPolicy(max_attempts=0).delays() == ()
        # base_delay 0 (the legacy ladder) never jitters into nonzero.
        assert RetryPolicy(max_attempts=3, base_delay=0.0).delays() == (
            0.0, 0.0, 0.0,
        )

    def test_jitter_bounded(self):
        policy = RetryPolicy(
            max_attempts=50, base_delay=1.0, max_delay=1.0, jitter=0.25,
        )
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.25

    def test_sleep_capped_by_ambient_deadline(self):
        clock = FakeClock()
        deadline = Deadline(0.01, clock=clock)
        clock.advance(1.0)  # budget fully spent
        with deadline_scope(deadline):
            # Would sleep 30s; must return immediately instead.
            RetryPolicy().sleep(30.0)

    def test_solver_options_legacy_mapping(self):
        legacy = ConvexSolverOptions(max_restarts=3, restart_seed=11)
        policy = legacy.resolved_retry()
        assert policy.max_attempts == 3
        assert policy.seed == 11
        assert policy.delays() == (0.0, 0.0, 0.0)
        explicit = ConvexSolverOptions(
            retry=RetryPolicy(max_attempts=1, base_delay=0.5)
        )
        assert explicit.resolved_retry().max_attempts == 1


class TestPipelineDeadlines:
    """The ambient budget cuts each cooperative check point."""

    def test_compile_cut_off_in_allocate(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceeded) as excinfo:
                compile_mdg(paper_example_mdg(), cm5(4))
        assert excinfo.value.stage == "allocate"

    def test_generous_budget_is_bit_transparent(self):
        plain = compile_mdg(paper_example_mdg(), cm5(4))
        with deadline_scope(Deadline(3600.0)):
            budgeted = compile_mdg(paper_example_mdg(), cm5(4))
        assert budgeted.allocation.processors == plain.allocation.processors
        assert budgeted.schedule.makespan == plain.schedule.makespan

    def test_measure_checks_deadline(self):
        result = compile_mdg(paper_example_mdg(), cm5(4))
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceeded) as excinfo:
                measure(result)
        assert excinfo.value.stage == "simulate"

    def test_solver_aborts_between_attempts(self):
        """DeadlineExceeded from the solver callback is never absorbed by
        the attempt ladder (unlike a per-attempt timeout)."""
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceeded):
                solve_allocation(
                    paper_example_mdg().normalized(),
                    cm5(4),
                    ConvexSolverOptions(strict=False),
                )


class TestCircuitBreaker:
    def setup_method(self):
        reset_breakers()

    def teardown_method(self):
        reset_breakers()

    def test_validation(self):
        with pytest.raises(ValidationError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker("x", reset_seconds=-1.0)
        with pytest.raises(ValidationError):
            CircuitBreaker("x", half_open_probes=0)

    def test_trips_after_threshold(self):
        clock = FakeClock()
        b = CircuitBreaker("t", failure_threshold=3, clock=clock)
        assert b.state == "closed"
        for _ in range(2):
            b.record_failure()
        assert b.state == "closed"
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("t", failure_threshold=2, clock=FakeClock())
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == "closed"

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "t", failure_threshold=1, reset_seconds=10.0, clock=clock
        )
        b.record_failure()
        assert not b.allow()
        clock.advance(10.0)
        assert b.state == "half-open"
        assert b.allow()       # reserves the single probe slot
        assert not b.allow()   # no second probe
        b.record_success()
        assert b.state == "closed"
        assert b.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "t", failure_threshold=1, reset_seconds=10.0, clock=clock
        )
        b.record_failure()
        clock.advance(10.0)
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()

    def test_registry_is_opt_in(self):
        assert maybe_breaker("solver") is None
        installed = install_breaker("solver", failure_threshold=2)
        assert maybe_breaker("solver") is installed
        reset_breakers()
        assert maybe_breaker("solver") is None

    def test_open_breaker_short_circuits_solver(self):
        clock = FakeClock()
        breaker = install_breaker(
            "solver", failure_threshold=1, reset_seconds=3600.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open"
        allocation = solve_allocation(paper_example_mdg().normalized(), cm5(4))
        assert allocation.info["fallback"] is True
        assert allocation.info["solver"]["method"] == "analytic-fallback"
        assert allocation.info["attempts"][0]["error"] == "circuit-open"
        # Every processor count is feasible on the machine.
        assert all(1.0 <= v <= 4.0 for v in allocation.processors.values())

    def test_closed_breaker_records_solver_success(self):
        breaker = install_breaker("solver", failure_threshold=1)
        allocation = solve_allocation(paper_example_mdg().normalized(), cm5(4))
        assert not allocation.info.get("fallback")
        assert breaker.state == "closed"

    def test_transitions_emit_telemetry(self):
        clock = FakeClock()
        telemetry = obs.configure(memory=True)
        try:
            b = CircuitBreaker(
                "probe", failure_threshold=1, reset_seconds=1.0, clock=clock
            )
            b.record_failure()       # closed -> open
            assert not b.allow()     # short-circuit event
            clock.advance(1.0)
            assert b.allow()         # open -> half-open, probe
            b.record_success()       # half-open -> closed
            events = [
                e for e in telemetry.collected_events()
                if e.get("name", "").startswith("resilience.breaker.")
            ]
            counters = {
                c.name: c.value for c in telemetry.metrics.counters.values()
            }
        finally:
            obs.shutdown()
        states = [
            (e["from_state"], e["to_state"])
            for e in events
            if e["name"] == "resilience.breaker.state"
        ]
        assert states == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        assert counters.get("resilience.breaker.trip") == 1
        assert counters.get("resilience.breaker.short_circuit") == 1
        assert counters.get("resilience.breaker.reset") == 1
