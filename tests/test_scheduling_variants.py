"""Unit tests for the HLFET and EFT list-scheduler variants."""

import pytest

from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.graph.generators import fork_join_mdg, layered_random_mdg, paper_example_mdg
from repro.scheduling.psa import PSAOptions, prioritized_schedule
from repro.scheduling.variants import eft_schedule, hlfet_schedule

SOLVER = ConvexSolverOptions(multistart_targets=(4.0,))


@pytest.fixture(params=[hlfet_schedule, eft_schedule])
def variant(request):
    return request.param


class TestVariantsProduceValidSchedules:
    def test_validates(self, variant, cm5_16):
        mdg = layered_random_mdg(3, 3, seed=9).normalized()
        allocation = solve_allocation(mdg, cm5_16, SOLVER)
        schedule = variant(mdg, allocation.processors, cm5_16)
        schedule.validate(schedule.info["weights"])
        assert schedule.is_complete

    def test_algorithm_labelled(self, cm5_16):
        mdg = fork_join_mdg(2, seed=0).normalized()
        allocation = solve_allocation(mdg, cm5_16, SOLVER)
        assert (
            hlfet_schedule(mdg, allocation.processors, cm5_16).info["algorithm"]
            == "HLFET"
        )
        assert (
            eft_schedule(mdg, allocation.processors, cm5_16).info["algorithm"]
            == "EFT"
        )

    def test_deterministic(self, variant, cm5_16):
        mdg = layered_random_mdg(3, 3, seed=13).normalized()
        allocation = solve_allocation(mdg, cm5_16, SOLVER)
        s1 = variant(mdg, allocation.processors, cm5_16)
        s2 = variant(mdg, allocation.processors, cm5_16)
        assert s1.makespan == s2.makespan

    def test_respects_processor_bound(self, variant, cm5_16):
        mdg = fork_join_mdg(2, seed=0).normalized()
        schedule = variant(
            mdg,
            {name: 16.0 for name in mdg.node_names()},
            cm5_16,
            PSAOptions(processor_bound=4),
        )
        assert all(e.width <= 4 for e in schedule)

    def test_same_preprocessing_as_psa(self, variant, cm5_16):
        """Variants share the rounding/bounding steps: identical
        allocations after preprocessing."""
        mdg = layered_random_mdg(3, 2, seed=21).normalized()
        allocation = solve_allocation(mdg, cm5_16, SOLVER)
        psa = prioritized_schedule(mdg, allocation.processors, cm5_16)
        alt = variant(mdg, allocation.processors, cm5_16)
        assert psa.info["allocation"] == alt.info["allocation"]
        assert psa.info["processor_bound"] == alt.info["processor_bound"]


class TestVariantQuality:
    def test_all_above_lower_bound(self, cm5_16):
        from repro.costs.node_weights import MDGCostModel

        mdg = layered_random_mdg(4, 3, seed=33).normalized()
        allocation = solve_allocation(mdg, cm5_16, SOLVER)
        cm = MDGCostModel(mdg, cm5_16.transfer_model())
        for scheduler in (prioritized_schedule, hlfet_schedule, eft_schedule):
            schedule = scheduler(mdg, allocation.processors, cm5_16)
            lower = cm.makespan_lower_bound(schedule.info["allocation"], 16)
            assert schedule.makespan >= lower * (1 - 1e-9)

    def test_no_variant_catastrophically_worse(self, cm5_16):
        """On moderate graphs the three priority rules stay within 2x of
        each other — they differ in constants, not asymptotics."""
        mdg = layered_random_mdg(4, 4, seed=44).normalized()
        allocation = solve_allocation(mdg, cm5_16, SOLVER)
        times = {
            s.__name__: s(mdg, allocation.processors, cm5_16).makespan
            for s in (prioritized_schedule, hlfet_schedule, eft_schedule)
        }
        assert max(times.values()) <= 2.0 * min(times.values()), times

    def test_identical_on_motivating_example(self, machine4):
        """Tiny graph, one obvious schedule: all rules agree."""
        mdg = paper_example_mdg().normalized()
        allocation = solve_allocation(mdg, machine4, SOLVER)
        options = PSAOptions(processor_bound="machine")
        makespans = {
            s(mdg, allocation.processors, machine4, options).makespan
            for s in (prioritized_schedule, hlfet_schedule, eft_schedule)
        }
        assert len(makespans) == 1
