"""Unit tests for the training-sets regression (Tables 1 and 2)."""

import numpy as np
import pytest

from repro.costs.fitting import (
    TransferTimingSample,
    fit_amdahl,
    fit_transfer_parameters,
)
from repro.costs.processing import AmdahlProcessingCost
from repro.costs.transfer import (
    ArrayTransfer,
    TransferCostModel,
    TransferCostParameters,
    TransferKind,
)
from repro.errors import CostModelError


class TestFitAmdahl:
    def test_exact_recovery_noiseless(self):
        truth = AmdahlProcessingCost(alpha=0.121, tau=0.29847)
        procs = [1, 2, 4, 8, 16, 32, 64]
        fit = fit_amdahl(procs, [truth.cost(p) for p in procs], name="matmul")
        assert fit.alpha == pytest.approx(0.121, abs=1e-9)
        assert fit.tau == pytest.approx(0.29847, rel=1e-9)
        assert fit.rms_relative_error < 1e-10
        assert fit.model.name == "matmul"

    def test_recovery_under_noise(self):
        truth = AmdahlProcessingCost(alpha=0.067, tau=0.00373)
        rng = np.random.default_rng(42)
        procs = np.array([1, 2, 4, 8, 16, 32, 64], dtype=float)
        times = np.array([truth.cost(p) for p in procs])
        noisy = times * (1 + rng.normal(0, 0.02, procs.size))
        fit = fit_amdahl(procs, noisy)
        assert fit.alpha == pytest.approx(0.067, abs=0.02)
        assert fit.tau == pytest.approx(0.00373, rel=0.05)
        assert fit.rms_relative_error < 0.05

    def test_alpha_clamped_to_unit_interval(self):
        # Perfectly parallel measurements: unconstrained alpha ~ 0 but noise
        # could push it negative; clamping must hold.
        procs = [1, 2, 4, 8]
        times = [1.0 / p for p in procs]
        fit = fit_amdahl(procs, times)
        assert 0.0 <= fit.alpha <= 1.0

    def test_predicted_recorded(self):
        truth = AmdahlProcessingCost(alpha=0.2, tau=1.0)
        procs = [1, 4, 16]
        fit = fit_amdahl(procs, [truth.cost(p) for p in procs])
        assert len(fit.predicted) == 3
        assert fit.predicted[0] == pytest.approx(1.0)

    def test_needs_two_distinct_counts(self):
        with pytest.raises(CostModelError):
            fit_amdahl([4, 4], [1.0, 1.0])
        with pytest.raises(CostModelError):
            fit_amdahl([4], [1.0])

    def test_rejects_non_positive(self):
        with pytest.raises(CostModelError):
            fit_amdahl([1, 2], [1.0, -0.5])
        with pytest.raises(CostModelError):
            fit_amdahl([0, 2], [1.0, 0.5])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(CostModelError):
            fit_amdahl([1, 2, 4], [1.0, 0.6])


def _samples_from_model(
    params: TransferCostParameters, kinds=(TransferKind.ROW2ROW, TransferKind.ROW2COL)
) -> list[TransferTimingSample]:
    model = TransferCostModel(params)
    samples = []
    for kind in kinds:
        for length in (8192.0, 32768.0, 131072.0):
            transfer = ArrayTransfer(length, kind)
            for pi, pj in [(1, 1), (2, 4), (4, 2), (8, 8), (4, 16), (16, 4)]:
                samples.append(
                    TransferTimingSample(
                        transfer=transfer,
                        p_i=pi,
                        p_j=pj,
                        send_time=model.send_cost(transfer, pi, pj),
                        receive_time=model.receive_cost(transfer, pi, pj),
                        network_time=model.network_cost(transfer, pi, pj),
                    )
                )
    return samples


class TestFitTransferParameters:
    TRUTH = TransferCostParameters(
        t_ss=777.56e-6, t_ps=486.98e-9, t_sr=465.58e-6, t_pr=426.25e-9, t_n=0.0
    )

    def test_exact_recovery_noiseless(self):
        fit = fit_transfer_parameters(_samples_from_model(self.TRUTH))
        assert fit.parameters.t_ss == pytest.approx(self.TRUTH.t_ss, rel=1e-6)
        assert fit.parameters.t_ps == pytest.approx(self.TRUTH.t_ps, rel=1e-6)
        assert fit.parameters.t_sr == pytest.approx(self.TRUTH.t_sr, rel=1e-6)
        assert fit.parameters.t_pr == pytest.approx(self.TRUTH.t_pr, rel=1e-6)
        assert fit.parameters.t_n == pytest.approx(0.0, abs=1e-12)
        assert fit.rms_relative_error < 1e-9

    def test_recovery_with_network_delay(self):
        truth = TransferCostParameters(1e-4, 1e-8, 8e-5, 9e-9, 3e-9)
        fit = fit_transfer_parameters(_samples_from_model(truth))
        assert fit.parameters.t_n == pytest.approx(3e-9, rel=1e-6)

    def test_recovery_under_noise(self):
        rng = np.random.default_rng(7)
        samples = []
        model = TransferCostModel(self.TRUTH)
        for s in _samples_from_model(self.TRUTH):
            noise = lambda: float(1 + rng.normal(0, 0.03))  # noqa: E731
            samples.append(
                TransferTimingSample(
                    transfer=s.transfer,
                    p_i=s.p_i,
                    p_j=s.p_j,
                    send_time=s.send_time * noise(),
                    receive_time=s.receive_time * noise(),
                    network_time=0.0,
                )
            )
        fit = fit_transfer_parameters(samples)
        assert fit.parameters.t_ss == pytest.approx(self.TRUTH.t_ss, rel=0.1)
        assert fit.parameters.t_pr == pytest.approx(self.TRUTH.t_pr, rel=0.1)
        # Predicted-vs-actual stays tight, like Figure 5.
        assert fit.rms_relative_error < 0.1

    def test_parameters_never_negative(self):
        """NNLS guarantee: even weird data yields physical constants."""
        t = ArrayTransfer(1024.0, TransferKind.ROW2ROW)
        samples = [
            TransferTimingSample(t, 1, 1, 1e-6, 5e-5, 0.0),
            TransferTimingSample(t, 2, 2, 2e-6, 1e-6, 0.0),
            TransferTimingSample(t, 4, 4, 9e-6, 3e-6, 0.0),
        ]
        fit = fit_transfer_parameters(samples)
        for name in ("t_ss", "t_ps", "t_sr", "t_pr", "t_n"):
            assert getattr(fit.parameters, name) >= 0.0

    def test_needs_two_samples(self):
        t = ArrayTransfer(1024.0, TransferKind.ROW2ROW)
        with pytest.raises(CostModelError):
            fit_transfer_parameters([TransferTimingSample(t, 1, 1, 1e-6, 1e-6)])

    def test_sample_validation(self):
        t = ArrayTransfer(1024.0, TransferKind.ROW2ROW)
        with pytest.raises(CostModelError):
            TransferTimingSample(t, 0, 1, 1e-6, 1e-6)
        with pytest.raises(CostModelError):
            TransferTimingSample(t, 1, 1, -1e-6, 1e-6)
