"""End-to-end robustness: fault-injected runs, recovery, solver degradation."""

import json

import pytest

import repro.allocation.solver as solver_module
from repro import obs
from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.cli import main
from repro.errors import FaultError, SolverError
from repro.faults import FaultSpec, ProcessorFailure
from repro.graph.generators import paper_example_mdg
from repro.machine.fidelity import HardwareFidelity
from repro.machine.presets import cm5
from repro.pipeline import execute_bundle, execute_with_faults
from repro.programs import complex_matmul_program
from repro.runtime.executor import ValueExecutor


@pytest.fixture
def telemetry():
    t = obs.Telemetry(sinks=[obs.MemorySink()])
    with obs.use(t):
        yield t


class TestExecuteWithFaults:
    @pytest.fixture(scope="class")
    def nominal(self):
        return execute_bundle(
            complex_matmul_program(16), cm5(8), HardwareFidelity.ideal()
        )

    @pytest.fixture(scope="class")
    def failure_spec(self, nominal):
        """A processor loss well inside the nominal execution window."""
        return FaultSpec(
            seed=7,
            processor_failures=(
                ProcessorFailure(0, nominal.measured_makespan * 0.3),
            ),
        )

    def test_processor_failure_recovers_and_verifies(self, failure_spec):
        execution = execute_with_faults(
            complex_matmul_program(16),
            cm5(8),
            failure_spec,
            HardwareFidelity.ideal(),
        )
        assert execution.simulation.halted
        assert execution.recovered
        report = execution.repair.report
        assert report.failed_processors == (0,)
        assert len(report.rescheduled_nodes) >= 1
        assert report.repaired_makespan > report.failure_time
        assert execution.degradation >= 1.0
        # verify=True ran without raising: the recovered answer is correct.

    def test_rescheduled_nodes_avoid_dead_processors(self, failure_spec):
        execution = execute_with_faults(
            complex_matmul_program(16),
            cm5(8),
            failure_spec,
            HardwareFidelity.ideal(),
        )
        physical = execution.repair.physical_schedule
        assert 0 not in set(physical.info["survivor_map"].values())
        for entry in physical:
            assert 0 not in entry.processors

    def test_bit_for_bit_reproducible(self, failure_spec):
        runs = [
            execute_with_faults(
                complex_matmul_program(16),
                cm5(8),
                failure_spec,
                HardwareFidelity.ideal(),
            )
            for _ in range(2)
        ]
        assert runs[0].simulation.makespan == runs[1].simulation.makespan
        assert runs[0].simulation.info == runs[1].simulation.info
        assert runs[0].repair.report == runs[1].repair.report
        assert (
            runs[0].value_report.kernel_retries
            == runs[1].value_report.kernel_retries
        )

    def test_benign_spec_needs_no_repair(self):
        execution = execute_with_faults(
            complex_matmul_program(16),
            cm5(8),
            FaultSpec(seed=1),
            HardwareFidelity.ideal(),
        )
        assert not execution.recovered
        assert execution.degradation == pytest.approx(1.0, rel=1e-6)

    def test_transient_faults_slow_but_verify(self):
        spec = FaultSpec(
            seed=3,
            transient_rate=0.05,
            retry_backoff=1e-5,
            slowdown={1: 1.5},
            link_spike_rate=0.1,
            drop_rate=0.05,
        )
        execution = execute_with_faults(
            complex_matmul_program(16), cm5(8), spec, HardwareFidelity.ideal()
        )
        assert not execution.simulation.halted
        assert execution.simulation.makespan >= execution.nominal_makespan
        assert execution.degradation >= 1.0

    def test_rejects_bad_faults_argument(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            execute_with_faults(
                complex_matmul_program(16), cm5(8), {"seed": 1}
            )

    def test_fault_and_recovery_events_on_obs(self, telemetry, failure_spec):
        execute_with_faults(
            complex_matmul_program(16),
            cm5(8),
            failure_spec,
            HardwareFidelity.ideal(),
        )
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["faults.processors_lost"] >= 1
        assert counters["recovery.repairs"] == 1
        names = {e.get("name") for e in telemetry.sinks[0].events}
        assert {"fault.processor_lost", "fault.halt", "recovery.report"} <= names


class TestExecutorKernelFaults:
    @pytest.fixture()
    def app_and_groups(self):
        app = complex_matmul_program(16).app
        groups = {name: 1 for name in app.computational_nodes()}
        return app, groups

    def test_retries_counted_and_reproducible(self, app_and_groups):
        app, groups = app_and_groups
        spec = FaultSpec(seed=1, transient_rate=0.3)
        r1 = ValueExecutor(app).run(groups, faults=spec)
        r2 = ValueExecutor(app).run(groups, faults=spec)
        assert r1.total_retries() > 0
        assert r1.kernel_retries == r2.kernel_retries

    def test_clean_spec_means_no_retries(self, app_and_groups):
        app, groups = app_and_groups
        report = ValueExecutor(app).run(groups, faults=FaultSpec(seed=1))
        assert report.kernel_retries == {}
        assert report.total_retries() == 0

    def test_exhaustion_raises_fault_error(self, app_and_groups):
        app, groups = app_and_groups
        spec = FaultSpec(seed=0, transient_rate=0.99, max_retries=0)
        with pytest.raises(FaultError, match="consecutive attempts"):
            ValueExecutor(app).run(groups, faults=spec)


class TestSolverFallbackPath:
    def test_primary_failure_falls_back_to_slsqp(
        self, machine4, monkeypatch, telemetry
    ):
        """Satellite: trust-constr blowing up must reach the SLSQP fallback."""
        real_run_method = solver_module._run_method

        def explode_primary(problem, method, z0, options):
            if method == "trust-constr":
                raise ValueError("synthetic primary blow-up")
            return real_run_method(problem, method, z0, options)

        monkeypatch.setattr(solver_module, "_run_method", explode_primary)
        allocation = solve_allocation(paper_example_mdg().normalized(), machine4)
        assert allocation.info["solver"]["method"] == "slsqp"
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["solver.attempt_errors"] >= 1
        assert counters["solver.solves"] == 1


class TestSolverDegradation:
    def test_strict_false_yields_analytic_fallback(
        self, machine4, monkeypatch, telemetry
    ):
        def always_explode(problem, method, z0, options):
            raise ValueError("synthetic numerical blow-up")

        monkeypatch.setattr(solver_module, "_run_method", always_explode)
        options = ConvexSolverOptions(strict=False, max_restarts=2)
        allocation = solve_allocation(
            paper_example_mdg().normalized(), machine4, options
        )
        assert allocation.info["fallback"] is True
        assert allocation.info["solver"]["method"] == "analytic-fallback"
        assert allocation.phi > 0.0
        p = machine4.processors
        for name, value in allocation.processors.items():
            assert 1.0 - 1e-9 <= value <= p + 1e-9
        # the degradation is loud: counters and a warning event
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["solver.failures"] == 1
        assert counters["solver.fallbacks"] == 1
        assert counters["solver.restarts"] == 2
        events = telemetry.sinks[0].events
        fallback_events = [e for e in events if e.get("name") == "solver.fallback"]
        assert len(fallback_events) == 1
        assert fallback_events[0]["level"] == "warning"

    def test_strict_default_still_raises(self, machine4, monkeypatch):
        def always_explode(problem, method, z0, options):
            raise ValueError("synthetic numerical blow-up")

        monkeypatch.setattr(solver_module, "_run_method", always_explode)
        with pytest.raises(SolverError, match="failed"):
            solve_allocation(paper_example_mdg().normalized(), machine4)

    def test_fallback_matches_exact_cost_model(self, machine4, monkeypatch):
        """The fallback's phi is the exact max(A, C) of its own allocation."""
        from repro.allocation.formulation import ConvexAllocationProblem

        def always_explode(problem, method, z0, options):
            raise ValueError("boom")

        monkeypatch.setattr(solver_module, "_run_method", always_explode)
        mdg = paper_example_mdg().normalized()
        allocation = solve_allocation(
            mdg, machine4, ConvexSolverOptions(strict=False, max_restarts=0)
        )
        problem = ConvexAllocationProblem(mdg, machine4)
        a, c = problem.evaluate_allocation(allocation.processors)
        assert allocation.phi == pytest.approx(max(a, c))

    def test_timeout_abandons_attempts(self, machine4, telemetry):
        """A microscopic budget times out every attempt; strict=False still
        returns the analytic fallback instead of hanging or raising."""
        options = ConvexSolverOptions(
            timeout_seconds=1e-9, max_restarts=1, strict=False
        )
        allocation = solve_allocation(
            paper_example_mdg().normalized(), machine4, options
        )
        assert allocation.info["fallback"] is True
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["solver.timeouts"] >= 1
        timeouts = [
            a for a in allocation.info["attempts"] if a.get("error") == "timeout"
        ]
        assert timeouts

    def test_invalid_options_rejected(self):
        with pytest.raises(SolverError):
            ConvexSolverOptions(timeout_seconds=0.0)
        with pytest.raises(SolverError):
            ConvexSolverOptions(max_restarts=-1)


class TestCLIFaults:
    def _write_spec(self, tmp_path, spec: FaultSpec) -> str:
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(spec.to_dict()))
        return str(path)

    def test_simulate_reports_recovery(self, tmp_path, capsys):
        spec = FaultSpec(
            seed=7, processor_failures=(ProcessorFailure(1, 1e-4),)
        )
        status = main(
            [
                "simulate",
                "--program",
                "complex",
                "--n",
                "16",
                "-p",
                "8",
                "--fidelity",
                "ideal",
                "--faults",
                self._write_spec(tmp_path, spec),
                "--fault-seed",
                "42",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "fault seed: 42" in out
        assert "HALTED" in out
        assert "repaired" in out

    def test_solver_flags_accepted(self, capsys):
        status = main(
            [
                "simulate",
                "--program",
                "complex",
                "--n",
                "16",
                "-p",
                "8",
                "--fidelity",
                "ideal",
                "--solver-timeout",
                "30",
                "--max-retries",
                "1",
            ]
        )
        assert status == 0
        assert "measured" in capsys.readouterr().out

    def test_fault_seed_without_faults_rejected(self):
        with pytest.raises(SystemExit, match="--fault-seed"):
            main(
                [
                    "simulate",
                    "--program",
                    "complex",
                    "--n",
                    "16",
                    "-p",
                    "8",
                    "--fault-seed",
                    "1",
                ]
            )

    def test_bad_spec_file_rejected(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        rc = main(
            [
                "simulate",
                "--program",
                "complex",
                "--n",
                "16",
                "-p",
                "8",
                "--faults",
                str(path),
            ]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not valid JSON" in err
