"""Integration tests for the end-to-end compilation pipeline."""

import pytest

from repro.machine.fidelity import HardwareFidelity
from repro.machine.presets import cm5
from repro.pipeline import compile_mdg, compile_spmd, measure
from repro.programs import complex_matmul_program, strassen_program
from repro.scheduling.psa import PSAOptions


class TestCompileMdg:
    def test_produces_all_artifacts(self, cm5_16):
        result = compile_mdg(complex_matmul_program(32).mdg, cm5_16)
        assert result.style == "MPMD"
        assert result.phi is not None
        assert result.schedule.is_complete
        assert result.program.n_instructions > 0
        assert result.predicted_makespan >= result.phi * 0.5

    def test_psa_options_forwarded(self, cm5_16):
        result = compile_mdg(
            complex_matmul_program(32).mdg,
            cm5_16,
            psa_options=PSAOptions(processor_bound=2),
        )
        assert result.schedule.info["processor_bound"] == 2
        assert all(e.width <= 2 for e in result.schedule)

    def test_normalization_applied(self, cm5_16):
        mdg = complex_matmul_program(32).mdg  # two sinks
        result = compile_mdg(mdg, cm5_16)
        assert result.mdg.is_normalized


class TestCompileSpmd:
    def test_spmd_artifacts(self, cm5_16):
        result = compile_spmd(complex_matmul_program(32).mdg, cm5_16)
        assert result.style == "SPMD"
        assert result.phi is None
        assert all(e.width == 16 for e in result.schedule)


class TestMeasure:
    def test_ideal_never_slower_than_prediction(self, cm5_16):
        result = compile_mdg(complex_matmul_program(32).mdg, cm5_16)
        sim = measure(result, HardwareFidelity.ideal())
        assert sim.makespan <= result.predicted_makespan * (1 + 1e-9)

    def test_ideal_spmd_matches_prediction_exactly(self, cm5_16):
        """SPMD is a chain with no scheduler idling: the self-timed
        execution must land exactly on the analytic makespan."""
        result = compile_spmd(complex_matmul_program(32).mdg, cm5_16)
        sim = measure(result, HardwareFidelity.ideal())
        assert sim.makespan == pytest.approx(result.predicted_makespan, rel=1e-9)

    def test_fidelity_changes_makespan(self, cm5_16):
        result = compile_mdg(complex_matmul_program(32).mdg, cm5_16)
        ideal = measure(result, HardwareFidelity.ideal()).makespan
        noisy = measure(result, HardwareFidelity.cm5_like()).makespan
        assert noisy != pytest.approx(ideal, rel=1e-12)

    def test_record_trace_flag(self, cm5_16):
        result = compile_mdg(complex_matmul_program(32).mdg, cm5_16)
        sim = measure(result, record_trace=False)
        assert len(sim.trace) == 0


class TestPaperPrograms:
    """Smoke the full pipeline on the paper's two evaluation programs at
    their real sizes (64 and 128) on the real partition sizes."""

    @pytest.mark.parametrize("p", [16, 32, 64])
    def test_complex_matmul(self, p):
        result = compile_mdg(complex_matmul_program(64).mdg, cm5(p))
        sim = measure(result, HardwareFidelity.cm5_like(), record_trace=False)
        assert 0 < sim.makespan < 10.0

    @pytest.mark.parametrize("p", [16, 64])
    def test_strassen(self, p):
        result = compile_mdg(strassen_program(128).mdg, cm5(p))
        sim = measure(result, HardwareFidelity.cm5_like(), record_trace=False)
        assert 0 < sim.makespan < 10.0
