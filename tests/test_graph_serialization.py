"""Round-trip tests for MDG JSON serialization."""

import pytest

from repro.costs.posynomial import Posynomial
from repro.costs.processing import (
    AmdahlProcessingCost,
    GeneralPosynomialProcessingCost,
    ZeroProcessingCost,
)
from repro.costs.transfer import ArrayTransfer, TransferKind
from repro.errors import ValidationError
from repro.graph.generators import layered_random_mdg
from repro.graph.mdg import MDG
from repro.graph.serialization import load_mdg, mdg_from_dict, mdg_to_dict, save_mdg


def build_rich_mdg() -> MDG:
    mdg = MDG("rich")
    mdg.add_node("amdahl", AmdahlProcessingCost(0.12, 0.3, name="mm"), "a multiply")
    mdg.add_node("dummy", ZeroProcessingCost())
    mdg.add_node(
        "poly",
        GeneralPosynomialProcessingCost(
            expression=Posynomial.constant(0.1) + 2.0 / Posynomial.variable("p"),
            name="calibrated",
        ),
    )
    mdg.add_edge(
        "amdahl",
        "poly",
        [
            ArrayTransfer(32768.0, TransferKind.ROW2ROW, "A"),
            ArrayTransfer(8192.0, TransferKind.COL2ROW, "B"),
        ],
    )
    mdg.add_edge("dummy", "poly")
    return mdg


class TestRoundTrip:
    def test_structure_preserved(self):
        mdg = build_rich_mdg()
        restored = mdg_from_dict(mdg_to_dict(mdg))
        assert restored.name == mdg.name
        assert restored.node_names() == mdg.node_names()
        assert [(e.source, e.target) for e in restored.edges()] == [
            (e.source, e.target) for e in mdg.edges()
        ]

    def test_cost_models_preserved(self):
        mdg = build_rich_mdg()
        restored = mdg_from_dict(mdg_to_dict(mdg))
        for name in mdg.node_names():
            for p in (1.0, 3.0, 16.0):
                assert restored.node(name).processing.cost(p) == pytest.approx(
                    mdg.node(name).processing.cost(p)
                )

    def test_amdahl_name_preserved(self):
        restored = mdg_from_dict(mdg_to_dict(build_rich_mdg()))
        assert restored.node("amdahl").processing.name == "mm"

    def test_transfers_preserved(self):
        restored = mdg_from_dict(mdg_to_dict(build_rich_mdg()))
        transfers = restored.edge("amdahl", "poly").transfers
        assert len(transfers) == 2
        assert transfers[0].kind == TransferKind.ROW2ROW
        assert transfers[1].kind == TransferKind.COL2ROW
        assert transfers[0].label == "A"
        assert transfers[1].length_bytes == 8192.0

    def test_description_preserved(self):
        restored = mdg_from_dict(mdg_to_dict(build_rich_mdg()))
        assert restored.node("amdahl").description == "a multiply"

    def test_file_round_trip(self, tmp_path):
        mdg = layered_random_mdg(3, 3, seed=2)
        path = tmp_path / "graph.json"
        save_mdg(mdg, path)
        restored = load_mdg(path)
        assert restored.node_names() == mdg.node_names()
        assert restored.n_edges == mdg.n_edges

    def test_double_round_trip_stable(self):
        mdg = build_rich_mdg()
        once = mdg_to_dict(mdg)
        twice = mdg_to_dict(mdg_from_dict(once))
        assert once == twice


class TestDuplicateEdges:
    def duplicated_doc(self):
        data = mdg_to_dict(build_rich_mdg())
        data["edges"].append({
            "source": "amdahl",
            "target": "poly",
            "transfers": [
                {"length_bytes": 4096.0, "kind": "row2row", "label": "C"}
            ],
        })
        return data

    def test_duplicate_edges_are_merged(self):
        mdg = mdg_from_dict(self.duplicated_doc())
        edges = [e for e in mdg.edges() if e.source == "amdahl"]
        assert len(edges) == 1
        labels = sorted(t.label for t in edges[0].transfers)
        assert labels == ["A", "B", "C"]

    def test_duplicate_edges_emit_warning_event(self):
        from repro import obs

        telemetry = obs.configure()
        try:
            mdg_from_dict(self.duplicated_doc())
            events = [
                e for e in telemetry.collected_events()
                if e.get("name") == "serialization.duplicate_edge"
            ]
            assert len(events) == 1
            assert events[0]["source"] == "amdahl"
        finally:
            obs.shutdown()

    def test_load_mdg_accepts_duplicate_edges(self, tmp_path):
        import json

        path = tmp_path / "dup.json"
        path.write_text(json.dumps(self.duplicated_doc()))
        mdg = load_mdg(path)
        assert sum(1 for e in mdg.edges() if e.source == "amdahl") == 1

    def test_checker_reports_duplicate_as_warning(self):
        from repro.check import Severity, check_document

        report = check_document(self.duplicated_doc())
        (finding,) = [f for f in report.findings if f.rule_id == "MDG003"]
        assert finding.severity is Severity.WARNING


class TestErrors:
    def test_unknown_schema_version(self):
        data = mdg_to_dict(build_rich_mdg())
        data["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema"):
            mdg_from_dict(data)

    def test_unknown_model_kind(self):
        data = mdg_to_dict(build_rich_mdg())
        data["nodes"][0]["processing"]["kind"] = "quantum"
        with pytest.raises(ValidationError, match="quantum"):
            mdg_from_dict(data)


class TestCombinatorFallback:
    """Combinator cost models serialize via their posynomial form."""

    def test_scaled_round_trips_cost_equivalently(self):
        from repro.costs.extensions import ScaledProcessingCost

        mdg = MDG("combo")
        base = AmdahlProcessingCost(0.1, 2.0)
        mdg.add_node("s", ScaledProcessingCost(base, 3.0, name="scaled"))
        restored = mdg_from_dict(mdg_to_dict(mdg))
        for p in (1.0, 4.0, 16.0):
            assert restored.node("s").processing.cost(p) == pytest.approx(
                3.0 * base.cost(p)
            )

    def test_sum_and_comm_aware_round_trip(self):
        from repro.costs.extensions import (
            CommunicationAwareCost,
            SumProcessingCost,
        )

        base = AmdahlProcessingCost(0.2, 1.0)
        mdg = MDG("combo2")
        mdg.add_node("sum", SumProcessingCost((base, base)))
        mdg.add_node(
            "comm", CommunicationAwareCost(base, comm_coefficient=0.01, gamma=1.0)
        )
        restored = mdg_from_dict(mdg_to_dict(mdg))
        for name in ("sum", "comm"):
            for p in (1.0, 8.0):
                assert restored.node(name).processing.cost(p) == pytest.approx(
                    mdg.node(name).processing.cost(p)
                )

    def test_recursive_strassen_mdg_saves(self, tmp_path):
        from repro.programs import strassen_recursive_program

        mdg = strassen_recursive_program(8, 1).mdg
        path = tmp_path / "rec.json"
        save_mdg(mdg, path)
        restored = load_mdg(path)
        assert restored.n_nodes == mdg.n_nodes
