"""Tests for the deterministic profiler (``repro.obs.prof``)."""

from __future__ import annotations

import random
import time

import pytest

from repro import obs
from repro.obs import prof


@pytest.fixture
def telemetry():
    t = obs.Telemetry(sinks=[obs.MemorySink()])
    with obs.use(t):
        yield t


def span(name, ts, dur, depth, parent=None, **attrs):
    return {
        "type": "span",
        "name": name,
        "ts": ts,
        "dur": dur,
        "depth": depth,
        "parent": parent,
        "attrs": attrs,
    }


def iteration(ts, method="trust-constr", **fields):
    return {
        "type": "event",
        "name": "solver.iteration",
        "ts": ts,
        "method": method,
        **fields,
    }


# One compile-shaped run: compile holds allocate + schedule; allocate
# holds two solver attempts. Records are in finish order, as written.
RUN = [
    {"type": "run_start", "ts": 0.0},
    span("solver.attempt", 0.10, 0.30, 2, "allocate"),
    span("solver.attempt", 0.45, 0.15, 2, "allocate"),
    span("allocate", 0.10, 0.55, 1, "compile"),
    span("schedule", 0.70, 0.20, 1, "compile"),
    span("compile", 0.00, 1.00, 0),
]


class TestSpanTree:
    def test_roots_and_children(self):
        roots = prof.build_span_tree(RUN)
        assert [r.name for r in roots] == ["compile"]
        compile_ = roots[0]
        assert [c.name for c in compile_.children] == ["allocate", "schedule"]
        allocate = compile_.children[0]
        assert [c.name for c in allocate.children] == [
            "solver.attempt",
            "solver.attempt",
        ]

    def test_self_time_subtracts_direct_children(self):
        roots = prof.build_span_tree(RUN)
        compile_ = roots[0]
        assert compile_.self_time == pytest.approx(1.00 - 0.55 - 0.20)
        allocate = compile_.children[0]
        assert allocate.self_time == pytest.approx(0.55 - 0.30 - 0.15)
        leaf = allocate.children[0]
        assert leaf.self_time == pytest.approx(leaf.duration)

    def test_self_time_clamped_at_zero(self):
        events = [
            span("child", 0.0, 2.0, 1, "parent"),
            span("parent", 0.0, 1.0, 0),
        ]
        (parent,) = prof.build_span_tree(events)
        assert parent.self_time == 0.0

    def test_multiple_roots_in_start_order(self):
        events = [span("b", 1.0, 0.5, 0), span("a", 0.0, 0.5, 0)]
        roots = prof.build_span_tree(events)
        assert [r.name for r in roots] == ["a", "b"]

    def test_non_span_records_ignored(self):
        assert prof.build_span_tree([{"type": "event", "ts": 0.0}]) == []


class TestStages:
    def test_stage_stats_aggregate_by_name(self):
        stats = prof.stage_stats(RUN)
        attempt = stats["solver.attempt"]
        assert attempt.count == 2
        assert attempt.total == pytest.approx(0.45)
        assert attempt.self_time == pytest.approx(0.45)
        assert attempt.min == pytest.approx(0.15)
        assert attempt.max == pytest.approx(0.30)

    def test_top_stages_by_self_vs_total(self):
        by_self = [s.name for s in prof.top_stages(RUN, by="self")]
        assert by_self[0] == "solver.attempt"
        by_total = [s.name for s in prof.top_stages(RUN, by="total")]
        assert by_total[0] == "compile"

    def test_top_stages_respects_n(self):
        assert len(prof.top_stages(RUN, n=2)) == 2
        assert prof.top_stages(RUN, n=0) == []

    def test_top_stages_rejects_bad_key(self):
        with pytest.raises(ValueError, match="self"):
            prof.top_stages(RUN, by="wall")

    def test_slowest_stage(self):
        assert prof.slowest_stage(RUN).name == "solver.attempt"
        assert prof.slowest_stage([]) is None


class TestDiff:
    def test_deltas_ranked_by_absolute_change(self):
        run_b = [
            {"type": "run_start", "ts": 0.0},
            span("solver.attempt", 0.10, 1.30, 2, "allocate"),
            span("allocate", 0.10, 1.40, 1, "compile"),
            span("schedule", 1.55, 0.20, 1, "compile"),
            span("compile", 0.00, 1.80, 0),
        ]
        deltas = prof.diff_stages(RUN, run_b)
        assert deltas[0].name == "solver.attempt"
        assert deltas[0].delta == pytest.approx(1.30 - 0.45)
        assert {d.name for d in deltas} == {
            "compile",
            "allocate",
            "schedule",
            "solver.attempt",
        }

    def test_stage_only_in_one_run(self):
        deltas = prof.diff_stages([span("a", 0.0, 1.0, 0)], [span("b", 0.0, 2.0, 0)])
        by_name = {d.name: d for d in deltas}
        assert by_name["b"].ratio == float("inf")
        assert by_name["b"].count_a == 0
        assert by_name["a"].delta == pytest.approx(-1.0)

    def test_render_diff_names_slowest_stage_and_biggest_change(self):
        run_b = [
            {"type": "run_start", "ts": 0.0},
            span("allocate", 0.0, 2.0, 1, "compile"),
            span("schedule", 2.0, 0.2, 1, "compile"),
            span("compile", 0.0, 2.3, 0),
        ]
        text = prof.render_diff(RUN, run_b, label_a="before", label_b="after")
        assert "slowest stage in before: solver.attempt" in text
        assert "slowest stage in after: allocate" in text
        assert "biggest change:" in text
        assert "slower in after" in text

    def test_render_diff_empty(self):
        assert "no spans" in prof.render_diff([], [])


class TestConvergence:
    def test_iterations_grouped_into_one_trace(self):
        events = [
            iteration(0.1, nit=1, objective=5.0),
            iteration(0.2, nit=2, objective=3.0, kkt_gap=0.5),
            iteration(0.3, nit=3, objective=2.5, kkt_gap=0.01),
        ]
        (trace,) = prof.convergence_traces(events)
        assert trace.n_iterations == 3
        assert trace.first_objective == 5.0
        assert trace.last_objective == 2.5
        assert trace.last_kkt_gap == 0.01

    def test_nit_reset_starts_new_trace(self):
        events = [
            iteration(0.1, nit=1, objective=5.0),
            iteration(0.2, nit=2, objective=4.0),
            iteration(0.3, nit=1, objective=9.0),  # fresh attempt
        ]
        traces = prof.convergence_traces(events)
        assert [t.n_iterations for t in traces] == [2, 1]

    def test_method_and_job_changes_split_traces(self):
        events = [
            iteration(0.1, nit=1, method="trust-constr"),
            iteration(0.2, nit=2, method="SLSQP"),
            iteration(0.3, nit=3, method="SLSQP", job="j1"),
        ]
        traces = prof.convergence_traces(events)
        assert [(t.method, t.job) for t in traces] == [
            ("trust-constr", None),
            ("SLSQP", None),
            ("SLSQP", "j1"),
        ]

    def test_missing_objectives_tolerated(self):
        (trace,) = prof.convergence_traces([iteration(0.1, nit=1)])
        assert trace.first_objective is None
        assert trace.last_kkt_gap is None

    def test_render_convergence(self):
        text = prof.render_convergence(
            [iteration(0.1, nit=1, objective=4.0, kkt_gap=0.2, job="a")]
        )
        assert "solver convergence traces" in text
        assert "trust-constr" in text
        assert prof.render_convergence([]) is None


class TestHotTimers:
    def test_hot_records_into_namespaced_histogram(self, telemetry):
        with prof.hot("solve"):
            pass
        h = telemetry.metrics.histograms[prof.HOT_PREFIX + "solve"]
        assert h.count == 1
        assert h.total >= 0.0

    def test_hot_noop_while_disabled(self):
        assert not obs.enabled()
        with prof.hot("solve"):
            pass  # must not raise, must not create global state

    def test_profiled_decorator_records_and_returns(self, telemetry):
        @prof.profiled("kernel")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert telemetry.metrics.histograms[prof.HOT_PREFIX + "kernel"].count == 1

    def test_profiled_defaults_to_qualname(self, telemetry):
        @prof.profiled()
        def named():
            return 1

        named()
        keys = list(telemetry.metrics.histograms)
        assert any("named" in k for k in keys)

    def test_profiled_passthrough_while_disabled(self):
        @prof.profiled("off")
        def f():
            return "ok"

        assert not obs.enabled()
        assert f() == "ok"


class TestRendering:
    def test_render_top_table(self):
        text = prof.render_top(RUN, n=3)
        assert "top 3 stage(s) by self time" in text
        assert "solver.attempt" in text

    def test_render_top_empty(self):
        assert prof.render_top([]) == "(no spans in run log)"

    def test_render_profile_sections(self):
        events = RUN + [
            iteration(0.2, nit=1, objective=3.0),
            {
                "type": "metrics",
                "ts": 1.0,
                "metrics": {
                    "counters": {"solver.evals.objective": 12},
                    "gauges": {},
                    "histograms": {
                        prof.HOT_PREFIX + "psa.pool": {
                            "count": 4,
                            "sum": 0.01,
                            "mean": 0.0025,
                            "max": 0.005,
                        }
                    },
                },
            },
        ]
        text = prof.render_profile(events, title="t")
        assert "== t ==" in text
        assert "span tree" in text
        assert "compile" in text
        assert "solver convergence traces" in text
        assert "solver.evals.objective" in text
        assert "psa.pool" in text  # hot-spot table, prefix stripped

    def test_render_profile_empty(self):
        assert "(empty run log)" in prof.render_profile([])


class TestDisabledOverhead:
    def test_disabled_profiler_overhead_under_five_percent(self):
        """The tentpole's cost contract: probes are free when obs is off.

        Times a realistic-sized workload bare vs. wrapped in ``hot()``
        with telemetry disabled, taking the min over several trials to
        shed scheduler noise, and requires <5% relative overhead.
        """
        assert not obs.enabled()
        rng = random.Random(7)
        payload = [rng.random() for _ in range(4000)]

        def bare():
            return sorted(payload)

        def wrapped():
            with prof.hot("bench.sort"):
                return sorted(payload)

        def best(fn, repeats=7, number=25):
            fn()  # warm up
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                for _ in range(number):
                    fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        base = best(bare)
        timed = best(wrapped)
        assert timed < base * 1.05, (
            f"disabled hot() overhead {timed / base - 1.0:.1%} exceeds 5%"
        )
