"""Unit tests for machine parameters, presets, and the fidelity layer."""

import numpy as np
import pytest

from repro.costs.transfer import TransferCostParameters
from repro.errors import ValidationError
from repro.machine.fidelity import HardwareFidelity
from repro.machine.parameters import MachineParameters
from repro.machine.presets import PRESETS, cm5, paragon_like, sp1_like, zero_communication


class TestMachineParameters:
    def test_basic(self):
        m = MachineParameters("m", 16, TransferCostParameters.zero())
        assert m.processors == 16
        assert m.power_of_two

    def test_non_power_of_two_flagged(self):
        m = MachineParameters("m", 12, TransferCostParameters.zero())
        assert not m.power_of_two

    def test_rejects_zero_processors(self):
        with pytest.raises(ValidationError):
            MachineParameters("m", 0, TransferCostParameters.zero())

    def test_rejects_bad_transfer(self):
        with pytest.raises(ValidationError):
            MachineParameters("m", 4, {"t_ss": 1.0})

    def test_with_processors(self):
        m = cm5(64).with_processors(16)
        assert m.processors == 16
        assert m.name == "CM-5"
        assert m.transfer == cm5(64).transfer

    def test_with_transfer(self):
        m = cm5(64).with_transfer(TransferCostParameters.zero())
        assert m.transfer.t_ss == 0.0
        assert m.processors == 64

    def test_transfer_model(self):
        model = cm5().transfer_model()
        assert model.parameters == cm5().transfer


class TestPresets:
    def test_cm5_table2_constants(self):
        """The preset must carry the paper's Table 2 values exactly."""
        m = cm5()
        assert m.transfer.t_ss == pytest.approx(777.56e-6)
        assert m.transfer.t_ps == pytest.approx(486.98e-9)
        assert m.transfer.t_sr == pytest.approx(465.58e-6)
        assert m.transfer.t_pr == pytest.approx(426.25e-9)
        assert m.transfer.t_n == 0.0
        assert m.processors == 64

    def test_zero_communication(self):
        m = zero_communication(8)
        assert m.transfer == TransferCostParameters.zero()

    def test_all_presets_construct(self):
        for name, factory in PRESETS.items():
            m = factory(16)
            assert m.processors == 16, name

    def test_flavours_differ(self):
        assert paragon_like().transfer.t_ss < cm5().transfer.t_ss
        assert sp1_like().transfer.t_ss > cm5().transfer.t_ss


class TestHardwareFidelity:
    def test_ideal_is_identity(self):
        f = HardwareFidelity.ideal()
        assert f.is_ideal
        assert f.compute_scale(64) == 1.0
        assert f.startup_scale(0) == 1.0
        assert f.startup_scale(5) == 1.0
        assert f.jitter_factor(f.rng()) == 1.0

    def test_cm5_like_not_ideal(self):
        assert not HardwareFidelity.cm5_like().is_ideal

    def test_compute_scale_grows_with_p(self):
        f = HardwareFidelity(compute_curvature=0.1)
        assert f.compute_scale(1) == pytest.approx(1.0)
        assert f.compute_scale(64) > f.compute_scale(8) > 1.0

    def test_startup_scale_after_first_message(self):
        f = HardwareFidelity(startup_serialization=0.25)
        assert f.startup_scale(0) == 1.0
        assert f.startup_scale(1) == pytest.approx(1.25)
        assert f.startup_scale(3) == pytest.approx(1.25)

    def test_jitter_deterministic_per_seed(self):
        f = HardwareFidelity(jitter=0.05, seed=3)
        a = [f.jitter_factor(rng) for rng in [f.rng()] for _ in range(5)]
        rng2 = HardwareFidelity(jitter=0.05, seed=3).rng()
        b = [f.jitter_factor(rng2) for _ in range(5)]
        assert a == b

    def test_jitter_mean_near_one(self):
        f = HardwareFidelity(jitter=0.02, seed=0)
        rng = f.rng()
        draws = np.array([f.jitter_factor(rng) for _ in range(2000)])
        assert draws.mean() == pytest.approx(1.0, abs=0.01)
        assert np.all(draws > 0)

    def test_rejects_negative_knobs(self):
        with pytest.raises(ValidationError):
            HardwareFidelity(compute_curvature=-0.1)
        with pytest.raises(ValidationError):
            HardwareFidelity(jitter=-1.0)
