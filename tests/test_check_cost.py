"""Unit tests for the cost pass family (COST001-COST007)."""

from __future__ import annotations

import pytest

from repro.check import Severity, check_document, check_mdg
from repro.costs.posynomial import Monomial, Posynomial
from repro.costs.processing import (
    AmdahlProcessingCost,
    GeneralPosynomialProcessingCost,
)
from repro.graph.mdg import MDG


def doc_with_processing(processing):
    return {
        "schema_version": 1,
        "name": "t",
        "nodes": [
            {"name": "a", "processing": processing},
            {"name": "b", "processing": {"kind": "zero"}},
        ],
        "edges": [{"source": "a", "target": "b", "transfers": []}],
    }


def rule_ids(report):
    return {f.rule_id for f in report.findings}


class TestPosynomialRules:
    def test_negative_coefficient(self):
        report = check_document(
            doc_with_processing(
                {"kind": "posynomial",
                 "terms": [{"coefficient": -2.0, "exponents": {"p": 1.0}}]}
            )
        )
        (finding,) = [f for f in report.findings if f.rule_id == "COST001"]
        assert finding.severity is Severity.ERROR
        assert finding.location == "$.nodes[0].processing.terms[0]"

    def test_zero_and_nan_coefficients(self):
        report = check_document(
            doc_with_processing(
                {"kind": "posynomial",
                 "terms": [{"coefficient": 0.0}, {"coefficient": float("nan")}]}
            )
        )
        assert sum(f.rule_id == "COST001" for f in report.findings) == 2

    def test_non_finite_exponent(self):
        report = check_document(
            doc_with_processing(
                {"kind": "posynomial",
                 "terms": [{"coefficient": 1.0,
                            "exponents": {"p": float("inf")}}]}
            )
        )
        assert "COST002" in rule_ids(report)

    def test_empty_posynomial(self):
        report = check_document(
            doc_with_processing({"kind": "posynomial", "terms": []})
        )
        (finding,) = [f for f in report.findings if f.rule_id == "COST004"]
        assert "no terms" in finding.message

    def test_unknown_kind(self):
        report = check_document(doc_with_processing({"kind": "quantum"}))
        assert "COST007" in rule_ids(report)

    def test_valid_posynomial_clean(self):
        report = check_document(
            doc_with_processing(
                {"kind": "posynomial",
                 "terms": [{"coefficient": 0.5, "exponents": {"p": -1.0}},
                           {"coefficient": 0.1, "exponents": {}}]}
            )
        )
        assert not rule_ids(report) & {"COST001", "COST002", "COST004", "COST007"}


class TestAmdahl:
    @pytest.mark.parametrize("alpha", [-0.1, 1.7, float("nan"), "x", None])
    def test_bad_alpha(self, alpha):
        report = check_document(
            doc_with_processing({"kind": "amdahl", "alpha": alpha, "tau": 1.0})
        )
        assert any(
            f.rule_id == "COST003" and "alpha" in f.message
            for f in report.findings
        )

    @pytest.mark.parametrize("tau", [0.0, -3.0, float("inf")])
    def test_bad_tau(self, tau):
        report = check_document(
            doc_with_processing({"kind": "amdahl", "alpha": 0.5, "tau": tau})
        )
        assert any(
            f.rule_id == "COST003" and "tau" in f.message
            for f in report.findings
        )

    def test_boundary_alpha_values_are_legal(self):
        for alpha in (0.0, 1.0):
            report = check_document(
                doc_with_processing(
                    {"kind": "amdahl", "alpha": alpha, "tau": 1.0}
                )
            )
            assert "COST003" not in rule_ids(report)


class TestDomain:
    def _mdg(self, model):
        mdg = MDG("t")
        mdg.add_node("a", model)
        mdg.add_node("b", AmdahlProcessingCost(0.1, 1.0))
        mdg.add_edge("a", "b", [])
        return mdg

    def test_overflow_at_domain_endpoint(self, machine8):
        # 1e308 * p^3 overflows to inf at p = 8.
        model = GeneralPosynomialProcessingCost(
            Posynomial([Monomial(1e308, {"p": 3.0})]), name="huge"
        )
        report = check_mdg(self._mdg(model), machine8, compile_schedule=False)
        assert any(
            f.rule_id == "COST005" and f.severity is Severity.ERROR
            for f in report.findings
        )

    def test_growing_cost_is_warning(self, machine8):
        # cost(p) = p: monotonically worse with more processors.
        model = GeneralPosynomialProcessingCost(
            Posynomial([Monomial(1.0, {"p": 1.0})]), name="grows"
        )
        report = check_mdg(self._mdg(model), machine8, compile_schedule=False)
        (finding,) = [f for f in report.findings if f.rule_id == "COST006"]
        assert finding.severity is Severity.WARNING

    def test_amdahl_domain_clean(self, machine8):
        report = check_mdg(
            self._mdg(AmdahlProcessingCost(0.2, 2.0)),
            machine8,
            compile_schedule=False,
        )
        assert not rule_ids(report) & {"COST005", "COST006"}

    def test_domain_pass_skipped_without_mdg(self):
        # Document-only analysis cannot evaluate models; no COST005/6.
        report = check_document(
            doc_with_processing({"kind": "amdahl", "alpha": 0.1, "tau": 1.0})
        )
        assert not rule_ids(report) & {"COST005", "COST006"}
