"""Cross-process telemetry: worker bundles and serial/parallel equivalence.

The regression guarded here: batch workers run in separate processes, so
before bundles existed their spans, solver convergence events, and
metrics were silently dropped from the parent's run log. Now a parallel
sweep must profile equivalently to a serial one.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.batch import BatchCompiler, BatchJob
from repro.cli import main
from repro.obs.bundle import JOB_SPAN, capture_bundle, merge_bundle
from repro.obs.runlog import run_log_problems
from repro.obs.sinks import read_jsonl


def jobs():
    # Two structurally different jobs so the structural solve cache
    # cannot collapse them into one solve (each must emit solver spans).
    return [
        BatchJob(
            job_id="c16",
            source={"kind": "program", "name": "complex", "n": 16},
            processors=8,
        ),
        BatchJob(
            job_id="f16",
            source={"kind": "program", "name": "fft2d", "n": 16},
            processors=8,
        ),
    ]


def run_batch(workers):
    telemetry = obs.Telemetry(sinks=[obs.MemorySink()])
    with obs.use(telemetry):
        report = BatchCompiler(workers=workers).run(jobs())
    return telemetry, report


def span_names(telemetry):
    return {
        (e["name"], e.get("job"))
        for e in telemetry.collected_events()
        if e["type"] == "span"
    }


def solver_iteration_jobs(telemetry):
    return {
        e.get("job")
        for e in telemetry.collected_events()
        if e["type"] == "event" and e["name"] == "solver.iteration"
    }


class TestBundles:
    def test_capture_excludes_run_start_and_metrics(self):
        worker = obs.Telemetry(sinks=[obs.MemorySink()])
        with obs.use(worker):
            with obs.span("compile"):
                obs.event("solver.iteration", nit=1)
            obs.counter("solver.evals.objective").inc(3)
        bundle = capture_bundle(worker)
        types = {e["type"] for e in bundle["events"]}
        assert types == {"span", "event"}
        assert bundle["metrics"]["counters"]["solver.evals.objective"] == 3.0
        json.dumps(bundle)  # must survive the process boundary as JSON

    def test_merge_replays_under_job_span(self):
        worker = obs.Telemetry(sinks=[obs.MemorySink()])
        with obs.use(worker):
            with obs.span("compile"):
                with obs.span("allocate"):
                    obs.event("solver.iteration", nit=1, objective=2.0)
        bundle = capture_bundle(worker)

        parent = obs.Telemetry(sinks=[obs.MemorySink()])
        with obs.use(parent):
            with obs.span("batch"):
                merge_bundle(parent, bundle, job_id="j1")
        spans = {
            e["name"]: e
            for e in parent.collected_events()
            if e["type"] == "span"
        }
        assert set(spans) == {"batch", JOB_SPAN, "compile", "allocate"}
        assert spans[JOB_SPAN]["depth"] == 1
        assert spans["compile"]["depth"] == 2
        assert spans["compile"]["parent"] == JOB_SPAN
        assert spans["allocate"]["depth"] == 3
        assert spans["allocate"]["attrs"]["job"] == "j1"
        iteration = next(
            e
            for e in parent.collected_events()
            if e["type"] == "event" and e["name"] == "solver.iteration"
        )
        assert iteration["job"] == "j1"
        assert parent.metrics is not worker.metrics
        # The merged stream is a valid run log.
        assert run_log_problems(parent.collected_events()) == []

    def test_merge_folds_worker_metrics(self):
        worker = obs.Telemetry(sinks=[obs.MemorySink()])
        with obs.use(worker):
            obs.counter("solver.evals.objective").inc(5)
            obs.histogram("prof.hot.solver.objective").observe(0.25)
        parent = obs.Telemetry(sinks=[obs.MemorySink()])
        merge_bundle(parent, capture_bundle(worker), job_id="j1")
        assert parent.metrics.counter("solver.evals.objective").value == 5.0
        hist = parent.metrics.histogram("prof.hot.solver.objective")
        assert hist.count == 1
        assert hist.total == 0.25

    def test_merge_rejects_unknown_version(self):
        parent = obs.Telemetry(sinks=[obs.MemorySink()])
        with pytest.raises(ValueError, match="unsupported obs bundle"):
            merge_bundle(parent, {"version": 99, "events": []}, job_id="x")
        with pytest.raises(ValueError):
            merge_bundle(parent, None, job_id="x")

    def test_no_bundle_captured_when_disabled(self):
        assert not obs.enabled()
        report = BatchCompiler().run(jobs()[:1])
        assert report.results[0].ok
        assert report.results[0].obs_bundle is None


class TestSerialParallelEquivalence:
    @pytest.fixture(scope="class")
    def both_runs(self):
        serial = run_batch(workers=0)
        parallel = run_batch(workers=4)
        return serial, parallel

    def test_all_jobs_succeed(self, both_runs):
        (_, serial_report), (_, parallel_report) = both_runs
        assert serial_report.n_failed == 0
        assert parallel_report.n_failed == 0

    def test_span_sets_equivalent(self, both_runs):
        (serial, _), (parallel, _) = both_runs
        assert span_names(serial) == span_names(parallel)

    def test_per_job_subtrees_present_in_parallel_run(self, both_runs):
        _, (parallel, _) = both_runs
        names = span_names(parallel)
        for job_id in ("c16", "f16"):
            assert (JOB_SPAN, job_id) in names
            assert any(
                name.startswith("solver") and job == job_id
                for name, job in names
            ), f"no solver spans for {job_id}"

    def test_convergence_events_survive_the_process_boundary(self, both_runs):
        (serial, _), (parallel, _) = both_runs
        assert solver_iteration_jobs(parallel) == {"c16", "f16"}
        assert solver_iteration_jobs(serial) == {"c16", "f16"}

    def test_metric_sets_equivalent(self, both_runs):
        (serial, _), (parallel, _) = both_runs
        for kind in ("counters", "gauges", "histograms"):
            assert set(serial.metrics.snapshot()[kind]) == set(
                parallel.metrics.snapshot()[kind]
            ), kind

    def test_merged_streams_are_valid_run_logs(self, both_runs):
        (serial, _), (parallel, _) = both_runs
        assert run_log_problems(serial.collected_events()) == []
        assert run_log_problems(parallel.collected_events()) == []


class TestBatchCliFourWorkers:
    def test_parent_log_contains_per_job_solver_spans(self, tmp_path, capsys):
        """Acceptance: a 4-worker batch leaves per-job solver spans (and
        per-iteration convergence events) in the parent's run log."""
        manifest = tmp_path / "sweep.json"
        manifest.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "jobs": [
                        {"id": "c16", "program": "complex", "n": 16,
                         "processors": 8},
                        {"id": "f16", "program": "fft2d", "n": 16,
                         "processors": 8},
                    ],
                }
            )
        )
        log = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "batch",
                    str(manifest),
                    "--workers",
                    "4",
                    "--no-cache",
                    "--log-json",
                    str(log),
                ]
            )
            == 0
        )
        capsys.readouterr()
        events = read_jsonl(log)
        spans = [e for e in events if e.get("type") == "span"]
        job_spans = {
            e.get("job") for e in spans if e.get("name") == JOB_SPAN
        }
        assert job_spans == {"c16", "f16"}
        for job_id in ("c16", "f16"):
            assert any(
                str(e.get("name", "")).startswith("solver")
                and e.get("job") == job_id
                for e in spans
            ), f"no solver spans for {job_id} in parent log"
            assert any(
                e.get("type") == "event"
                and e.get("name") == "solver.iteration"
                and e.get("job") == job_id
                for e in events
            ), f"no convergence events for {job_id} in parent log"
        # The parent log is clean: repro check would find nothing.
        assert run_log_problems(events) == []
