"""The crash-tolerant batch executor, end to end.

Covers the recovery path for every chaos fault class (worker SIGKILL,
forced lease expiry, artifact corruption), the exactly-once completion
guarantee with bit-identical results, WorkerLost triage records, the
SIGKILL-the-whole-CLI-mid-batch scenario (mirroring
``test_store_resume``), and the issue's 32-job acceptance run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.batch import BatchCompiler, BatchJob
from repro.resilience import ChaosSpec, ResilienceOptions, count_executions
from repro.resilience.lease import LeaseManager

REPO_ROOT = Path(__file__).resolve().parent.parent


def jobs_for(n, *, simulate=False, size=8):
    return [
        BatchJob(
            job_id=f"j{i}",
            source={"kind": "program", "name": "complex", "n": size},
            processors=8,
            simulate=simulate,
        )
        for i in range(n)
    ]


def strip(results):
    """The deterministic per-job payload that must be bit-identical."""
    return {
        r.job_id: (
            r.ok, r.phi, r.predicted_makespan, r.measured_makespan,
            None if r.processors is None else tuple(sorted(r.processors.items())),
        )
        for r in results
    }


class TestResilientExecutor:
    def test_clean_run_matches_serial_bit_for_bit(self, tmp_path):
        jobs = jobs_for(4, simulate=True, size=12)
        serial = BatchCompiler(workers=0).run(jobs)
        resilient = BatchCompiler(workers=2, cache_dir=str(tmp_path)) \
            .run_resilient(jobs, ResilienceOptions(lease_ttl=2.0))
        assert strip(resilient.results) == strip(serial.results)
        assert resilient.resilience["worker_crashes"] == 0
        assert resilient.resilience["lost_jobs"] == 0
        # Exactly one execution per job on the happy path.
        assert count_executions(tmp_path) == {f"j{i}": 1 for i in range(4)}

    def test_results_in_submission_order(self, tmp_path):
        jobs = jobs_for(5)
        report = BatchCompiler(workers=2, cache_dir=str(tmp_path)) \
            .run_resilient(jobs, ResilienceOptions(lease_ttl=2.0))
        assert [r.job_id for r in report.results] == [j.job_id for j in jobs]

    def test_worker_kill_is_recovered(self, tmp_path):
        jobs = jobs_for(4)
        chaos = ChaosSpec(seed=1, kill_jobs=("j1",))
        report = BatchCompiler(workers=2, cache_dir=str(tmp_path)) \
            .run_resilient(
                jobs, ResilienceOptions(lease_ttl=1.0, chaos=chaos)
            )
        assert all(r.ok for r in report.results)
        assert report.resilience["worker_crashes"] == 1
        assert report.resilience["respawns"] == 1
        assert report.resilience["lost_jobs"] == 0
        # The kill fires after claiming but before executing, so the
        # killed job still executes exactly once (on attempt 2).
        assert count_executions(tmp_path)["j1"] == 1

    def test_corrupt_result_is_quarantined_and_rerun(self, tmp_path):
        jobs = jobs_for(3)
        chaos = ChaosSpec(seed=1, corrupt_jobs=("j0",))
        report = BatchCompiler(workers=2, cache_dir=str(tmp_path)) \
            .run_resilient(
                jobs, ResilienceOptions(lease_ttl=1.0, chaos=chaos)
            )
        assert all(r.ok for r in report.results)
        # Attempt 1's artifact was truncated post-write; verification
        # quarantined it and the job ran again.
        assert count_executions(tmp_path)["j0"] == 2
        serial = BatchCompiler(workers=0).run(jobs)
        assert strip(report.results) == strip(serial.results)

    def test_forced_expiry_double_executes_identically(self, tmp_path):
        jobs = jobs_for(3)
        # The stall keeps attempt 1 alive well past its injected 50 ms
        # ttl so a second worker reclaims and re-runs concurrently.
        chaos = ChaosSpec(
            seed=1, expire_jobs=("j2",), stall_jobs=("j2",),
            stall_seconds=1.0, expire_ttl=0.05,
        )
        report = BatchCompiler(workers=2, cache_dir=str(tmp_path)) \
            .run_resilient(
                jobs, ResilienceOptions(lease_ttl=1.0, chaos=chaos)
            )
        assert all(r.ok for r in report.results)
        assert report.resilience["lost_jobs"] == 0
        assert count_executions(tmp_path)["j2"] >= 1
        serial = BatchCompiler(workers=0).run(jobs)
        assert strip(report.results) == strip(serial.results)

    def test_lost_job_record_carries_stage_and_elapsed(self, tmp_path):
        # One worker, zero respawns: the SIGKILL'd job can never finish,
        # and its error record must triage from the lease black box.
        jobs = jobs_for(1)
        chaos = ChaosSpec(seed=1, kill_jobs=("j0",))
        report = BatchCompiler(workers=1, cache_dir=str(tmp_path)) \
            .run_resilient(
                jobs,
                ResilienceOptions(
                    workers=1, lease_ttl=1.0, max_respawns=0, chaos=chaos
                ),
            )
        record = report.results[0]
        assert not record.ok
        assert record.error_type == "WorkerLost"
        assert record.stage == "claimed"
        assert "last stage 'claimed'" in record.error
        assert record.latency_seconds >= 0.0
        assert report.resilience["lost_jobs"] == 1

    def test_duplicate_job_ids_rejected(self, tmp_path):
        from repro.errors import ReproError

        jobs = [jobs_for(1)[0], jobs_for(1)[0]]
        with pytest.raises(ReproError, match="unique job ids"):
            BatchCompiler(workers=2, cache_dir=str(tmp_path)) \
                .run_resilient(jobs, ResilienceOptions(lease_ttl=1.0))

    def test_report_renders_resilience_summary(self, tmp_path):
        jobs = jobs_for(2)
        report = BatchCompiler(workers=2, cache_dir=str(tmp_path)) \
            .run_resilient(jobs, ResilienceOptions(lease_ttl=2.0))
        text = report.render_text()
        assert "resilience:" in text
        assert "0 lost" in text
        doc = report.to_dict()
        assert doc["resilience"]["executions"] == 2


class TestAcceptance32:
    """The issue's acceptance bar: 32 jobs, >= 3 SIGKILLs, one forced
    lease expiry — everything completes exactly once, bit-identical to a
    crash-free serial run."""

    def test_32_jobs_3_kills_1_expiry(self, tmp_path):
        jobs = jobs_for(32)
        chaos = ChaosSpec(
            seed=7,
            kill_jobs=("j5", "j13", "j27"),
            expire_jobs=("j20",),
            stall_jobs=("j20",),
            stall_seconds=1.0,
            expire_ttl=0.05,
        )
        resilient = BatchCompiler(workers=3, cache_dir=str(tmp_path)) \
            .run_resilient(
                jobs, ResilienceOptions(lease_ttl=1.0, chaos=chaos)
            )
        assert all(r.ok for r in resilient.results)
        summary = resilient.resilience
        assert summary["worker_crashes"] >= 3
        assert summary["lost_jobs"] == 0

        # Exactly-once completion: one valid result artifact per job...
        executions = count_executions(tmp_path)
        assert set(executions) == {f"j{i}" for i in range(32)}
        assert all(n >= 1 for n in executions.values())
        # ...and every SIGKILL'd job executed exactly once (the kill
        # fires pre-execution; the reclaimed attempt does the work).
        for job_id in chaos.kill_jobs:
            assert executions[job_id] == 1, (job_id, executions)
        # The forced-expiry job's lease shows the reclaim (attempt > 1).
        leases = LeaseManager(tmp_path, owner="inspect", ttl=1.0)
        expired = leases.read("j20")
        assert expired is not None and expired.attempt >= 2

        serial = BatchCompiler(workers=0).run(jobs)
        assert all(r.ok for r in serial.results)
        assert strip(resilient.results) == strip(serial.results)


# --------------------------------------------------------------------------
# SIGKILL the whole CLI mid-batch (parent + workers), then finish the
# batch with a second invocation — mirroring test_store_resume's
# kill-and-resume scenario at the batch level.
# --------------------------------------------------------------------------


def _cli(extra, *, cwd, background=False):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    cmd = [sys.executable, "-m", "repro", *extra]
    if background:
        # Own process group so the SIGKILL takes out the daemon workers
        # too, not just the parent.
        return subprocess.Popen(
            cmd, cwd=cwd, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True, start_new_session=True,
        )
    return subprocess.run(
        cmd, cwd=cwd, env=env, capture_output=True, text=True, timeout=300
    )


def _wait_for(predicate, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def test_cli_sigkill_mid_batch_then_finish(tmp_path):
    manifest = tmp_path / "sweep.json"
    manifest.write_text(json.dumps({
        "schema_version": 1,
        "jobs": [
            {"id": f"j{i}", "program": "complex", "n": 12, "processors": 8}
            for i in range(8)
        ],
    }))
    coord = tmp_path / "coord"
    batch_args = [
        "batch", str(manifest), "--resilient", "--workers", "2",
        "--lease-ttl", "1.0", "--cache-dir", str(coord),
    ]

    proc = _cli(batch_args, cwd=tmp_path, background=True)
    try:
        results_dir = coord / "batch-result"
        # Let real work land, then SIGKILL parent + workers mid-batch.
        assert _wait_for(
            lambda: len(list(results_dir.glob("*.json"))) >= 2
        ), "no results appeared before the kill"
        assert len(list(results_dir.glob("*.json"))) < 8, (
            "batch finished before the kill; make the jobs bigger"
        )
        os.killpg(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30)
        proc.stdout.close()
    assert proc.returncode == -signal.SIGKILL

    before = {p.name: p.read_bytes() for p in results_dir.glob("*.json")}
    report_path = tmp_path / "report.json"
    rerun = _cli(
        batch_args + ["--output", str(report_path)], cwd=tmp_path
    )
    assert rerun.returncode == 0, rerun.stdout + rerun.stderr

    report = json.loads(report_path.read_text())
    assert report["ok"] == 8
    assert report["resilience"]["lost_jobs"] == 0
    # Results completed before the kill were adopted, not recomputed.
    for name, blob in before.items():
        assert (results_dir / name).read_bytes() == blob

    # And the whole interrupted-then-finished batch matches a clean
    # serial run bit for bit.
    clean_path = tmp_path / "clean.json"
    clean = _cli(
        ["batch", str(manifest), "--workers", "0", "--no-cache",
         "--output", str(clean_path)],
        cwd=tmp_path,
    )
    assert clean.returncode == 0, clean.stdout + clean.stderr
    keep = ("job_id", "ok", "phi", "predicted_makespan", "processors")
    rows = lambda doc: {  # noqa: E731
        r["job_id"]: {k: r[k] for k in keep} for r in doc["results"]
    }
    assert rows(report) == rows(json.loads(clean_path.read_text()))
