"""Unit tests for the processing-cost models (Eq. 1, Lemma 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costs.posynomial import Posynomial
from repro.costs.processing import (
    AmdahlProcessingCost,
    GeneralPosynomialProcessingCost,
    ZeroProcessingCost,
)
from repro.errors import CostModelError, ValidationError


class TestAmdahlProcessingCost:
    def test_serial_time_is_tau(self):
        model = AmdahlProcessingCost(alpha=0.1, tau=2.0)
        assert model.cost(1.0) == pytest.approx(2.0)
        assert model.serial_time() == pytest.approx(2.0)

    def test_paper_table1_matmul_values(self):
        """Table 1: alpha = 12.1%, tau = 298.47 ms for 64x64 multiply."""
        model = AmdahlProcessingCost(alpha=0.121, tau=0.29847)
        assert model.cost(1) == pytest.approx(0.29847)
        # On 64 processors: (0.121 + 0.879/64) * tau
        assert model.cost(64) == pytest.approx((0.121 + 0.879 / 64) * 0.29847)

    def test_monotone_decreasing_in_p(self):
        model = AmdahlProcessingCost(alpha=0.067, tau=0.00373)
        costs = [model.cost(p) for p in (1, 2, 4, 8, 16, 32, 64)]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_saturation_speedup(self):
        assert AmdahlProcessingCost(0.25, 1.0).saturation_speedup() == pytest.approx(4.0)
        assert AmdahlProcessingCost(0.0, 1.0).saturation_speedup() == math.inf

    def test_speedup_below_saturation(self):
        model = AmdahlProcessingCost(alpha=0.1, tau=1.0)
        assert model.speedup(8) < model.saturation_speedup()

    def test_efficiency_decreasing(self):
        model = AmdahlProcessingCost(alpha=0.121, tau=0.3)
        effs = [model.efficiency(p) for p in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(effs, effs[1:]))
        assert effs[0] == pytest.approx(1.0)

    def test_posynomial_matches_cost(self):
        model = AmdahlProcessingCost(alpha=0.3, tau=5.0)
        poly = model.posynomial("p7")
        for p in (1.0, 2.5, 16.0):
            assert poly.evaluate({"p7": p}) == pytest.approx(model.cost(p))

    def test_posynomial_alpha_zero_has_one_term(self):
        poly = AmdahlProcessingCost(alpha=0.0, tau=1.0).posynomial("p")
        assert len(poly) == 1

    def test_posynomial_alpha_one_is_constant(self):
        poly = AmdahlProcessingCost(alpha=1.0, tau=2.0).posynomial("p")
        assert poly.is_constant()
        assert poly.constant_value() == pytest.approx(2.0)

    def test_lemma1_cost_times_p_is_posynomial(self):
        """t^C * p must stay in the cone (the A_p construction needs it)."""
        model = AmdahlProcessingCost(alpha=0.2, tau=1.0)
        product = model.posynomial("p") * Posynomial.variable("p")
        for p in (1.0, 3.0, 64.0):
            assert product.evaluate({"p": p}) == pytest.approx(model.cost(p) * p)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValidationError):
            AmdahlProcessingCost(alpha=1.5, tau=1.0)
        with pytest.raises(ValidationError):
            AmdahlProcessingCost(alpha=-0.1, tau=1.0)

    def test_rejects_bad_tau(self):
        with pytest.raises(ValidationError):
            AmdahlProcessingCost(alpha=0.5, tau=0.0)

    def test_rejects_non_positive_processors(self):
        model = AmdahlProcessingCost(alpha=0.5, tau=1.0)
        with pytest.raises(CostModelError):
            model.cost(0.0)
        with pytest.raises(CostModelError):
            model.cost(-1.0)

    def test_frozen(self):
        model = AmdahlProcessingCost(alpha=0.5, tau=1.0)
        with pytest.raises(AttributeError):
            model.alpha = 0.9

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=1e-6, max_value=1e3),
        st.floats(min_value=1.0, max_value=1024.0),
    )
    def test_cost_bounds(self, alpha, tau, p):
        """alpha*tau <= t(p) <= tau for p >= 1."""
        model = AmdahlProcessingCost(alpha=alpha, tau=tau)
        cost = model.cost(p)
        assert cost <= tau * (1 + 1e-12)
        assert cost >= alpha * tau * (1 - 1e-12)


class TestGeneralPosynomialProcessingCost:
    def test_matches_expression(self):
        expr = Posynomial.constant(1.0) + 2.0 / Posynomial.variable("p")
        model = GeneralPosynomialProcessingCost(expression=expr)
        assert model.cost(2.0) == pytest.approx(2.0)

    def test_rename_variable(self):
        expr = 3.0 / Posynomial.variable("p")
        model = GeneralPosynomialProcessingCost(expression=expr)
        poly = model.posynomial("px")
        assert poly.evaluate({"px": 3.0}) == pytest.approx(1.0)

    def test_posynomial_same_name_shortcut(self):
        expr = Posynomial.variable("p")
        model = GeneralPosynomialProcessingCost(expression=expr)
        assert model.posynomial("p") == expr

    def test_rejects_wrong_variable(self):
        with pytest.raises(CostModelError, match="'p'"):
            GeneralPosynomialProcessingCost(expression=Posynomial.variable("q"))

    def test_rejects_zero_expression(self):
        with pytest.raises(CostModelError, match="non-zero"):
            GeneralPosynomialProcessingCost(expression=Posynomial.zero())

    def test_super_amdahl_model(self):
        """A model with a growing communication term (alpha not constant)."""
        p = Posynomial.variable("p")
        expr = Posynomial.constant(0.1) + 1.0 / p + 0.001 * p
        model = GeneralPosynomialProcessingCost(expression=expr)
        # Has an interior optimum processor count.
        costs = {q: model.cost(q) for q in (1, 8, 32, 1024)}
        assert costs[32] < costs[1]
        assert costs[1024] > costs[32]


class TestZeroProcessingCost:
    def test_zero_everywhere(self):
        model = ZeroProcessingCost()
        assert model.cost(1) == 0.0
        assert model.cost(64) == 0.0
        assert model.serial_time() == 0.0

    def test_posynomial_is_zero(self):
        assert ZeroProcessingCost().posynomial("p").is_zero()

    def test_equality_and_hash(self):
        assert ZeroProcessingCost() == ZeroProcessingCost()
        assert hash(ZeroProcessingCost()) == hash(ZeroProcessingCost())
