"""Unit tests for the Jacobi relaxation workload and stencil kernel."""

import numpy as np
import pytest

from repro.programs.jacobi import jacobi_program, stencil_cost
from repro.runtime.distribution import DistributedArray, RowBlock
from repro.runtime.executor import ValueExecutor
from repro.runtime.kernels import JacobiSweep
from repro.runtime.verify import sequential_reference, verify_against_reference


class TestJacobiSweepKernel:
    def test_serial_matches_manual_stencil(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(6, 5))
        kernel = JacobiSweep(6, 5)
        out = kernel.serial({"x": x})
        padded = np.pad(x, 1, mode="edge")
        expected = 0.25 * (
            padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
        )
        assert np.allclose(out, expected)

    @pytest.mark.parametrize("group", [1, 2, 3, 6, 8])
    def test_local_matches_serial(self, group):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, 5))
        kernel = JacobiSweep(6, 5)
        dx = DistributedArray.from_full(x, RowBlock(6, 5, group))
        full = kernel.serial({"x": x})
        blocks = {r: kernel.local(r, {"x": dx}) for r in range(group)}
        assembled = kernel.output_distribution(group).gather(blocks)
        assert np.allclose(assembled, full)

    def test_constant_grid_is_fixed_point(self):
        x = np.full((5, 5), 3.0)
        assert np.allclose(JacobiSweep(5, 5).serial({"x": x}), x)

    def test_smoothing_reduces_range(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(10, 10))
        out = JacobiSweep(10, 10).serial({"x": x})
        assert out.max() - out.min() < x.max() - x.min()


class TestJacobiProgram:
    def test_structure_is_a_chain(self):
        mdg = jacobi_program(4, 16).mdg
        assert mdg.n_nodes == 5
        assert mdg.sources() == ["grid"]
        assert mdg.sinks() == ["sweep3"]
        for name in mdg.node_names():
            assert len(mdg.successors(name)) <= 1

    def test_distributed_execution_correct(self):
        bundle = jacobi_program(3, 12)
        report = ValueExecutor(bundle.app).run(
            {n: 4 for n in bundle.app.computational_nodes()}
        )
        verify_against_reference(bundle.app, report)

    def test_heat_diffuses_inward(self):
        bundle = jacobi_program(5, 12)
        values = sequential_reference(bundle.app)
        interior_start = values["grid"][5, 5]
        interior_end = values["sweep4"][5, 5]
        assert interior_start == 0.0
        assert interior_end >= 0.0
        # Boundary heat spreads: total interior energy grows.
        assert values["sweep4"][1:-1, 1:-1].sum() > values["grid"][1:-1, 1:-1].sum() * 0.99
        assert values["sweep4"][2, 2] > 0.0

    def test_stencil_cost_scaling(self):
        assert stencil_cost(128).tau == pytest.approx(4 * stencil_cost(64).tau)
        assert stencil_cost(64).alpha == pytest.approx(0.067)


class TestChainCompilation:
    """The PB-vs-chain interaction the module docstring describes."""

    def test_machine_bound_matches_spmd(self, cm5_16):
        from repro.pipeline import compile_mdg, compile_spmd
        from repro.scheduling.psa import PSAOptions

        mdg = jacobi_program(4, 64).mdg
        mpmd = compile_mdg(
            mdg, cm5_16, psa_options=PSAOptions(processor_bound="machine")
        )
        spmd = compile_spmd(mdg, cm5_16)
        assert mpmd.predicted_makespan == pytest.approx(
            spmd.predicted_makespan, rel=1e-6
        )

    def test_default_bound_costs_a_little(self, cm5_16):
        from repro.pipeline import compile_mdg, compile_spmd

        mdg = jacobi_program(4, 64).mdg
        mpmd = compile_mdg(mdg, cm5_16)  # Corollary 1 PB = 8 < 16
        spmd = compile_spmd(mdg, cm5_16)
        assert mpmd.predicted_makespan >= spmd.predicted_makespan * (1 - 1e-9)
        # ... but the safety margin costs at most ~60% even here.
        assert mpmd.predicted_makespan <= spmd.predicted_makespan * 1.6
