"""Unit tests for the Schedule container, validation and metrics."""

import pytest

from repro.costs.node_weights import MDGCostModel
from repro.costs.processing import AmdahlProcessingCost
from repro.costs.transfer import TransferCostModel, TransferCostParameters
from repro.errors import SchedulingError
from repro.graph.mdg import MDG
from repro.scheduling.schedule import Schedule, ScheduledNode


def two_node_mdg() -> MDG:
    mdg = MDG("pair")
    mdg.add_node("a", AmdahlProcessingCost(0.0, 1.0))
    mdg.add_node("b", AmdahlProcessingCost(0.0, 1.0))
    mdg.add_edge("a", "b")
    return mdg


def weights_for(mdg, alloc):
    cm = MDGCostModel(mdg, TransferCostModel(TransferCostParameters.zero()))
    return cm.bind(alloc)


class TestScheduledNode:
    def test_duration_and_width(self):
        e = ScheduledNode("a", 1.0, 3.0, (0, 1))
        assert e.duration == 2.0
        assert e.width == 2

    def test_rejects_reversed_times(self):
        with pytest.raises(SchedulingError):
            ScheduledNode("a", 3.0, 1.0, (0,))

    def test_rejects_empty_processors(self):
        with pytest.raises(SchedulingError):
            ScheduledNode("a", 0.0, 1.0, ())

    def test_rejects_duplicate_processors(self):
        with pytest.raises(SchedulingError):
            ScheduledNode("a", 0.0, 1.0, (0, 0))


class TestScheduleConstruction:
    def test_add_and_access(self):
        mdg = two_node_mdg()
        s = Schedule(mdg=mdg, total_processors=2)
        s.add(ScheduledNode("a", 0.0, 1.0, (0,)))
        assert "a" in s
        assert len(s) == 1
        assert s.entry("a").finish == 1.0

    def test_double_schedule_rejected(self):
        s = Schedule(mdg=two_node_mdg(), total_processors=2)
        s.add(ScheduledNode("a", 0.0, 1.0, (0,)))
        with pytest.raises(SchedulingError, match="twice"):
            s.add(ScheduledNode("a", 1.0, 2.0, (0,)))

    def test_unknown_node_rejected(self):
        s = Schedule(mdg=two_node_mdg(), total_processors=2)
        with pytest.raises(SchedulingError, match="not in the MDG"):
            s.add(ScheduledNode("ghost", 0.0, 1.0, (0,)))

    def test_out_of_range_processor_rejected(self):
        s = Schedule(mdg=two_node_mdg(), total_processors=2)
        with pytest.raises(SchedulingError, match="out-of-range"):
            s.add(ScheduledNode("a", 0.0, 1.0, (5,)))

    def test_makespan_of_empty_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule(mdg=two_node_mdg(), total_processors=2).makespan


class TestValidation:
    def build_valid(self):
        mdg = two_node_mdg()
        s = Schedule(mdg=mdg, total_processors=2)
        alloc = {"a": 1, "b": 1}
        w = weights_for(mdg, alloc)
        s.add(ScheduledNode("a", 0.0, w.node_weight("a"), (0,)))
        s.add(
            ScheduledNode(
                "b", w.node_weight("a"), w.node_weight("a") + w.node_weight("b"), (0,)
            )
        )
        return s, w

    def test_valid_schedule_passes(self):
        s, w = self.build_valid()
        s.validate(w)

    def test_incomplete_detected(self):
        mdg = two_node_mdg()
        s = Schedule(mdg=mdg, total_processors=2)
        s.add(ScheduledNode("a", 0.0, 1.0, (0,)))
        with pytest.raises(SchedulingError, match="missing"):
            s.validate()

    def test_double_booking_detected(self):
        mdg = two_node_mdg()
        s = Schedule(mdg=mdg, total_processors=2)
        s.add(ScheduledNode("a", 0.0, 2.0, (0,)))
        s.add(ScheduledNode("b", 1.0, 3.0, (0,)))  # overlaps on proc 0
        with pytest.raises(SchedulingError, match="double-booked"):
            s.validate()

    def test_wrong_duration_detected(self):
        s, w = self.build_valid()
        # Rebuild with a stretched entry.
        mdg = s.mdg
        bad = Schedule(mdg=mdg, total_processors=2)
        bad.add(ScheduledNode("a", 0.0, 99.0, (0,)))
        bad.add(ScheduledNode("b", 99.0, 99.0 + w.node_weight("b"), (0,)))
        with pytest.raises(SchedulingError, match="weight"):
            bad.validate(w)

    def test_precedence_violation_detected(self):
        mdg = two_node_mdg()
        alloc = {"a": 1, "b": 1}
        w = weights_for(mdg, alloc)
        s = Schedule(mdg=mdg, total_processors=2)
        s.add(ScheduledNode("a", 0.0, w.node_weight("a"), (0,)))
        s.add(ScheduledNode("b", 0.0, w.node_weight("b"), (1,)))  # too early
        with pytest.raises(SchedulingError, match="precedence"):
            s.validate(w)

    def test_width_mismatch_detected(self):
        mdg = two_node_mdg()
        alloc = {"a": 2, "b": 1}
        w = weights_for(mdg, alloc)
        s = Schedule(mdg=mdg, total_processors=2)
        s.add(ScheduledNode("a", 0.0, w.node_weight("a"), (0,)))  # should be 2 wide
        s.add(
            ScheduledNode(
                "b", w.node_weight("a"), w.node_weight("a") + w.node_weight("b"), (0,)
            )
        )
        with pytest.raises(SchedulingError, match="allocation"):
            s.validate(w)


class TestMetrics:
    def build(self):
        mdg = MDG("three")
        for name in ("a", "b", "c"):
            mdg.add_node(name, AmdahlProcessingCost(0.0, 1.0))
        mdg.add_edge("a", "b")
        mdg.add_edge("a", "c")
        s = Schedule(mdg=mdg, total_processors=4)
        s.add(ScheduledNode("a", 0.0, 2.0, (0, 1, 2, 3)))
        s.add(ScheduledNode("b", 2.0, 4.0, (0, 1)))
        s.add(ScheduledNode("c", 2.0, 3.0, (2, 3)))
        return s

    def test_makespan(self):
        assert self.build().makespan == 4.0

    def test_busy_profile(self):
        profile = self.build().busy_profile()
        assert profile == [(0.0, 2.0, 4), (2.0, 3.0, 4), (3.0, 4.0, 2)]

    def test_useful_work_area(self):
        # Definition 1: 2*4 + 1*4 + 1*2 = 14
        assert self.build().useful_work_area() == pytest.approx(14.0)

    def test_idle_area(self):
        # 4 procs * 4 s - 14 = 2
        assert self.build().idle_area() == pytest.approx(2.0)

    def test_utilization(self):
        assert self.build().utilization() == pytest.approx(14.0 / 16.0)

    def test_concurrency_at(self):
        s = self.build()
        assert s.concurrency_at(1.0) == 4
        assert s.concurrency_at(3.5) == 2
        assert s.concurrency_at(4.0) == 0

    def test_allocation_from_entries(self):
        assert self.build().allocation() == {"a": 4, "b": 2, "c": 2}

    def test_work_area_bounded_by_rectangle(self):
        s = self.build()
        assert s.useful_work_area() <= s.total_processors * s.makespan
