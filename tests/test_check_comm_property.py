"""Property tests for the comm family: every corpus program verifies
clean, and each seeded mutation class trips its specific COMM rule.

The mutation harness mirrors tests/test_check_property.py: hypothesis
picks a precompiled program document and an op to mutate; the mutated
document must produce the mutation class's rule with an edge-level
location (or a wait-for cycle, for deadlocks), and the pristine document
must stay clean — the analyzer neither under- nor over-reports.
"""

from __future__ import annotations

import copy
import functools
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import check_program
from repro.codegen.serialization import program_to_dict
from repro.graph import generators
from repro.graph.serialization import mdg_from_dict
from repro.machine.presets import cm5
from repro.pipeline import compile_mdg
from repro.programs import DEFAULT_SIZES, PROGRAM_FACTORIES

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "graphs"

#: name -> zero-arg MDG factory; the full corpus the acceptance criteria
#: name: both paper graphs, every built-in program, synthetic generators.
CORPUS = {
    "paper_example": generators.paper_example_mdg,
    "figure1": lambda: mdg_from_dict(
        json.loads((EXAMPLES / "figure1.json").read_text())
    ),
    "chain": lambda: generators.chain_mdg(6, seed=1),
    "fork_join": lambda: generators.fork_join_mdg(5, seed=2),
    "diamond": lambda: generators.diamond_mdg(3, seed=3),
    "layered_random": lambda: generators.layered_random_mdg(3, 4, seed=4),
    "series_parallel": lambda: generators.series_parallel_mdg(5, seed=5),
    **{
        name: functools.partial(
            lambda n_, f_: f_(n_).mdg, DEFAULT_SIZES[name], factory
        )
        for name, factory in PROGRAM_FACTORIES.items()
    },
}


@functools.lru_cache(maxsize=None)
def compiled(name: str, processors: int = 8):
    machine = cm5(processors)
    compilation = compile_mdg(CORPUS[name](), machine)
    return compilation, machine


@functools.lru_cache(maxsize=None)
def base_doc(name: str) -> dict:
    compilation, _ = compiled(name)
    return program_to_dict(compilation.program)


def fresh_doc(name: str) -> dict:
    return copy.deepcopy(base_doc(name))


def rule_ids(report) -> set[str]:
    return {f.rule_id for f in report}


#: The hypothesis pool: one byte-moving program, one pure-sync paper
#: graph, one synthetic — enough shape diversity without compiling
#: inside @given.
POOL = ("complex", "paper_example", "fork_join")

pool_names = st.sampled_from(POOL)
pick = st.integers(0, 10_000)


def ops_of(doc, kind):
    """Every (stream_key, index) whose op has ``kind``."""
    return [
        (key, i)
        for key in sorted(doc["streams"])
        for i, o in enumerate(doc["streams"][key])
        if o["op"] == kind
    ]


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_program_verifies_clean(name):
    compilation, machine = compiled(name)
    report = check_program(
        compilation.program,
        schedule=compilation.schedule,
        mdg=compilation.schedule.mdg,
        machine=machine,
        artifact=f"corpus:{name}",
    )
    assert len(report) == 0, report.render_text()


@pytest.mark.parametrize(
    "name", ["complex", "strassen", "fft2d", "jacobi", "paper_example"]
)
def test_corpus_program_verifies_clean_at_16(name):
    compilation, machine = compiled(name, 16)
    report = check_program(
        compilation.program,
        schedule=compilation.schedule,
        mdg=compilation.schedule.mdg,
        machine=machine,
    )
    assert len(report) == 0, report.render_text()


@settings(max_examples=25, deadline=None)
@given(name=pool_names, k=pick)
def test_dropped_send_trips_comm002(name, k):
    doc = fresh_doc(name)
    sends = ops_of(doc, "send")
    key, i = sends[k % len(sends)]
    doc["streams"][key].pop(i)
    report = check_program(doc)
    assert "COMM002" in rule_ids(report)
    found = [f for f in report if f.rule_id == "COMM002"]
    # Edge-level location, naming the dropped sender.
    assert any(f.location.startswith("$.edges[") for f in found)
    assert any(f"proc {key}" in f.message for f in found)


@settings(max_examples=25, deadline=None)
@given(name=pool_names, k=pick)
def test_duplicated_recv_trips_comm003(name, k):
    doc = fresh_doc(name)
    recvs = ops_of(doc, "recv")
    key, i = recvs[k % len(recvs)]
    doc["streams"][key].insert(i, copy.deepcopy(doc["streams"][key][i]))
    report = check_program(doc)
    assert "COMM003" in rule_ids(report)
    found = [f for f in report if f.rule_id == "COMM003"]
    assert any(f.location.startswith("$.edges[") for f in found)


@settings(max_examples=25, deadline=None)
@given(name=pool_names, k=pick)
def test_reordered_stream_trips_comm006(name, k):
    # Move a message op across its block boundary: a recv is pushed past
    # its node's compute (or a send pulled in front of it).
    doc = fresh_doc(name)
    candidates = []
    for key in sorted(doc["streams"]):
        ops = doc["streams"][key]
        for i, o in enumerate(ops):
            if o["op"] != "recv":
                continue
            for j in range(i + 1, len(ops)):
                if ops[j]["op"] == "compute" and ops[j]["node"] == o["target"]:
                    candidates.append((key, i, j))
                    break
    key, i, j = candidates[k % len(candidates)]
    ops = doc["streams"][key]
    ops.insert(j, ops.pop(i))  # recv now sits after its compute
    report = check_program(doc)
    assert "COMM006" in rule_ids(report)
    found = [f for f in report if f.rule_id == "COMM006"]
    assert any(f.location.startswith(f"$.streams.{key}[") for f in found)


@settings(max_examples=25, deadline=None)
@given(name=pool_names, k=pick)
def test_byte_skew_trips_comm004(name, k):
    doc = fresh_doc(name)
    sends = ops_of(doc, "send")
    key, i = sends[k % len(sends)]
    op = doc["streams"][key][i]
    op["bytes_sent"] += max(1.0, 0.01 * op["bytes_sent"])
    report = check_program(doc)
    assert "COMM004" in rule_ids(report)
    found = [f for f in report if f.rule_id == "COMM004"]
    assert any(f.location.startswith("$.edges[") for f in found)


@settings(max_examples=25, deadline=None)
@given(k=pick)
def test_precedence_violating_order_trips_comm006(k):
    # Swap two computes connected by an edge on one stream: the
    # dependent node now runs first.
    doc = fresh_doc("complex")
    edges = {(e["source"], e["target"]) for e in doc["edges"]}
    candidates = []
    for key in sorted(doc["streams"]):
        computes = [
            (i, o["node"])
            for i, o in enumerate(doc["streams"][key])
            if o["op"] == "compute"
        ]
        for a in range(len(computes)):
            for b in range(a + 1, len(computes)):
                if (computes[a][1], computes[b][1]) in edges:
                    candidates.append((key, computes[a][0], computes[b][0]))
    key, i, j = candidates[k % len(candidates)]
    ops = doc["streams"][key]
    ops[i], ops[j] = ops[j], ops[i]
    report = check_program(doc)
    found = [f for f in report if f.rule_id == "COMM006"]
    assert found
    assert any("precedence" in f.message or "phase" in f.message
               for f in found)


@settings(max_examples=10, deadline=None)
@given(k=pick)
def test_dropped_send_also_stalls_abstract_execution(k):
    # The deadlock rule reports the exact blocked receive left behind by
    # a dropped send (processor + instruction index).
    doc = fresh_doc("paper_example")
    sends = ops_of(doc, "send")
    key, i = sends[k % len(sends)]
    doc["streams"][key].pop(i)
    report = check_program(doc)
    found = [f for f in report if f.rule_id == "COMM005"]
    assert found
    assert all(f.location.startswith("$.streams.") for f in found)
    assert any(
        "at instruction" in f.message for f in found
    )


def test_mutations_do_not_corrupt_base_docs():
    # The lru_cache'd documents must stay pristine across the suite.
    for name in POOL:
        compilation, machine = compiled(name)
        assert base_doc(name) == program_to_dict(compilation.program)
        assert len(check_program(fresh_doc(name), machine=machine)) == 0
