"""Unit tests for repro.store: artifacts, atomic writes, and the cache."""

import json
import os
from pathlib import Path

import pytest

from repro import obs
from repro.errors import ArtifactCorruptError, ArtifactError, ArtifactVersionError
from repro.store import (
    Artifact,
    ArtifactStore,
    atomic_write_text,
    canonical_json,
    content_hash,
    read_artifact,
    write_artifact,
)


class TestCanonicalJson:
    def test_key_order_invariant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert content_hash({"b": 1, "a": 2}) == content_hash({"a": 2, "b": 1})

    def test_compact(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_nan_rejected(self):
        with pytest.raises(ArtifactError, match="serializable"):
            canonical_json({"x": float("nan")})

    def test_non_json_rejected(self):
        with pytest.raises(ArtifactError, match="serializable"):
            canonical_json({"x": object()})

    def test_hash_is_sha256_hex(self):
        digest = content_hash({"a": 1})
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_float_roundtrip_stability(self):
        value = {"phi": 0.1 + 0.2}
        rehydrated = json.loads(canonical_json(value))
        assert content_hash(rehydrated) == content_hash(value)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        # No stray temp files left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.json"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_failure_leaves_original(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        atomic_write_text(target, "original")

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(target, "replacement")
        assert target.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class TestArtifactRoundtrip:
    def _artifact(self, payload=None):
        return Artifact(
            kind="allocation",
            schema_version=1,
            key="k" * 16,
            payload=payload if payload is not None else {"processors": {"n1": 2.0}},
            meta={"stage": "allocation"},
        )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, self._artifact())
        loaded = read_artifact(path, expect_kind="allocation", expect_version=1)
        assert loaded.payload == {"processors": {"n1": 2.0}}
        assert loaded.key == "k" * 16
        assert loaded.meta == {"stage": "allocation"}

    def test_deterministic_bytes(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_artifact(a, self._artifact())
        write_artifact(b, self._artifact())
        assert a.read_bytes() == b.read_bytes()

    def test_flipped_byte_detected(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, self._artifact())
        raw = bytearray(path.read_bytes())
        # Flip a byte inside the payload, keeping the JSON parseable.
        idx = raw.index(b"n1")
        raw[idx] = ord("m")
        path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            read_artifact(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, self._artifact())
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(ArtifactCorruptError, match="JSON"):
            read_artifact(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactCorruptError, match="cannot read"):
            read_artifact(tmp_path / "absent.json")

    def test_version_mismatch_is_stale_not_corrupt(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, self._artifact())
        envelope = json.loads(path.read_text())
        envelope["schema_version"] = 99
        path.write_text(json.dumps(envelope))
        with pytest.raises(ArtifactVersionError, match="schema version"):
            read_artifact(path, expect_version=1)

    def test_kind_mismatch_rejected(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, self._artifact())
        with pytest.raises(ArtifactCorruptError, match="kind"):
            read_artifact(path, expect_kind="schedule")

    def test_key_mismatch_rejected(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, self._artifact())
        with pytest.raises(ArtifactCorruptError, match="key"):
            read_artifact(path, expect_key="other")

    def test_envelope_missing_fields(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text('{"kind": "x"}')
        with pytest.raises(ArtifactCorruptError, match="missing fields"):
            read_artifact(path)

    def test_non_object_envelope(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ArtifactCorruptError, match="object"):
            read_artifact(path)


class TestArtifactStore:
    def test_miss_then_hit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load("allocation", "deadbeef", 1) is None
        store.store("allocation", "deadbeef", {"x": 1}, 1)
        artifact = store.load("allocation", "deadbeef", 1)
        assert artifact is not None
        assert artifact.payload == {"x": 1}

    def test_corrupt_entry_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.store("schedule", "cafe01", {"x": 1}, 1)
        path.write_text(path.read_text()[:-10])
        assert store.load("schedule", "cafe01", 1) is None
        assert not path.exists()
        quarantined = list(store.quarantine_dir.iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].name.startswith("schedule-cafe01")
        # The slot is free again: a rewrite works.
        store.store("schedule", "cafe01", {"x": 2}, 1)
        assert store.load("schedule", "cafe01", 1).payload == {"x": 2}

    def test_stale_version_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("schedule", "cafe02", {"x": 1}, 1)
        assert store.load("schedule", "cafe02", 2) is None
        assert list(store.quarantine_dir.iterdir())

    def test_strict_store_raises_on_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path, strict=True)
        path = store.store("schedule", "cafe03", {"x": 1}, 1)
        path.write_text(path.read_text()[:-10])
        with pytest.raises(ArtifactCorruptError):
            store.load("schedule", "cafe03", 1)
        # strict mode preserves the evidence in place
        assert path.exists()

    def test_quarantine_name_collisions(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for _ in range(3):
            path = store.store("mdg", "feed01", {"x": 1}, 1)
            path.write_text("not json")
            assert store.load("mdg", "feed01", 1) is None
        assert len(list(store.quarantine_dir.iterdir())) == 3

    def test_rejects_path_traversal_keys(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactError, match="key"):
            store.path_for("mdg", "../escape")
        with pytest.raises(ArtifactError, match="kind"):
            store.path_for("../mdg", "deadbeef")

    def test_entries_listing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("mdg", "aaaa", {"x": 1}, 1)
        store.store("schedule", "bbbb", {"x": 1}, 1)
        assert len(store.entries()) == 2

    def test_metrics_emitted(self, tmp_path):
        telemetry = obs.configure()
        try:
            store = ArtifactStore(tmp_path)
            store.load("mdg", "aaaa", 1)  # miss
            path = store.store("mdg", "aaaa", {"x": 1}, 1)
            store.load("mdg", "aaaa", 1)  # hit
            path.write_text("broken")
            store.load("mdg", "aaaa", 1)  # corrupt
            counters = {
                c.name: c.value for c in telemetry.metrics.counters.values()
            }
        finally:
            obs.shutdown()
        assert counters["store.miss"] == 1
        assert counters["store.hit"] == 1
        assert counters["store.corrupt"] == 1
        assert counters["store.write"] == 1
