"""End-to-end telemetry: the instrumented pipeline and the CLI flags."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.machine.presets import cm5
from repro.pipeline import compile_mdg, measure
from repro.programs import complex_matmul_program

PIPELINE_PHASES = {"compile", "allocate", "schedule", "codegen", "simulate"}


@pytest.fixture
def telemetry():
    t = obs.Telemetry(sinks=[obs.MemorySink()])
    with obs.use(t):
        yield t


class TestInstrumentedPipeline:
    def test_phase_spans_cover_the_pipeline(self, telemetry):
        result = compile_mdg(complex_matmul_program(16).mdg, cm5(16))
        measure(result)
        names = {s.name for s in telemetry.spans}
        assert PIPELINE_PHASES <= names

    def test_solver_telemetry(self, telemetry):
        compile_mdg(complex_matmul_program(16).mdg, cm5(16))
        metrics = telemetry.metrics.snapshot()
        assert metrics["counters"]["solver.attempts"] >= 1
        assert metrics["counters"]["solver.solves"] == 1
        assert metrics["histograms"]["solver.iterations"]["count"] >= 1
        assert metrics["histograms"]["solver.iterations"]["max"] >= 1
        # scipy callbacks fired per iteration.
        callback_keys = [
            k
            for k in metrics["histograms"]
            if k.startswith("solver.callback_iterations.")
        ]
        assert callback_keys
        iteration_events = [
            e
            for e in telemetry.collected_events()
            if e.get("name") == "solver.iteration"
        ]
        assert iteration_events
        assert all("method" in e for e in iteration_events)

    def test_psa_decision_events(self, telemetry):
        result = compile_mdg(complex_matmul_program(16).mdg, cm5(16))
        events = telemetry.collected_events()
        prepare = [e for e in events if e.get("name") == "psa.prepare"]
        assert prepare and prepare[0]["processor_bound"] >= 1
        scheduled = [e for e in events if e.get("name") == "psa.schedule"]
        assert len(scheduled) == len(result.schedule.entries)
        for e in scheduled:
            assert e["start"] == pytest.approx(max(e["est"], e["pst"]))
            assert e["finish"] >= e["start"]
        metrics = telemetry.metrics.snapshot()
        assert metrics["histograms"]["psa.ready_queue_length"]["count"] > 0

    def test_simulator_telemetry(self, telemetry):
        result = compile_mdg(complex_matmul_program(16).mdg, cm5(16))
        sim = measure(result)
        metrics = telemetry.metrics.snapshot()
        assert metrics["counters"]["sim.instructions"] == result.program.n_instructions
        assert 0.0 < metrics["gauges"]["sim.utilization"] <= 1.0
        assert metrics["gauges"]["sim.makespan"] == pytest.approx(sim.makespan)
        runs = [
            e for e in telemetry.collected_events() if e.get("name") == "sim.run"
        ]
        assert runs
        assert runs[0]["sends"] > 0 and runs[0]["recvs"] > 0
        assert runs[0]["makespan"] == pytest.approx(sim.makespan)

    def test_runtime_transfer_telemetry(self, telemetry):
        from repro.pipeline import execute_bundle

        bundle = complex_matmul_program(8)
        execution = execute_bundle(bundle, cm5(8))
        metrics = telemetry.metrics.snapshot()
        assert metrics["counters"]["runtime.nodes_executed"] > 0
        events = telemetry.collected_events()
        transfer = [e for e in events if e.get("name") == "runtime.transfer"]
        assert transfer
        total = [e for e in events if e.get("name") == "runtime.execute"]
        assert total[0]["bytes_moved"] == execution.value_report.total_bytes_moved()

    def test_frontend_telemetry(self, telemetry):
        from repro.frontend import LoopProgram, compile_loop_program

        prog = LoopProgram("obs_demo")
        prog.declare("A", 16, 16).declare("B", 16, 16).declare("C", 16, 16)
        prog.loop("initA", "matinit", writes="A")
        prog.loop("initB", "matinit", writes="B")
        prog.loop("mul", "matmul", writes="C", reads=("A", "B"))
        compile_loop_program(prog)
        assert any(s.name == "frontend" for s in telemetry.spans)
        lower = [
            e
            for e in telemetry.collected_events()
            if e.get("name") == "frontend.lower"
        ]
        assert lower and lower[0]["loops"] == 3

    def test_coarsen_span(self, telemetry):
        from repro.graph.coarsen import coarsen_mdg

        mdg = complex_matmul_program(16).mdg.normalized()
        result = coarsen_mdg(mdg, 4)
        span = [s for s in telemetry.spans if s.name == "coarsen"][0]
        assert span.attrs["nodes_before"] == mdg.n_nodes
        assert span.attrs["nodes_after"] == result.coarse.n_nodes


class TestCliTelemetryFlags:
    def test_compile_log_json_covers_every_phase(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        status = main(
            [
                "compile",
                "--program",
                "complex",
                "--n",
                "16",
                "-p",
                "16",
                "--log-json",
                str(log),
            ]
        )
        assert status == 0
        events = obs.read_jsonl(log)  # every line parses
        spans = {e["name"] for e in events if e["type"] == "span"}
        assert {"compile", "allocate", "schedule", "codegen"} <= spans
        assert events[-1]["type"] == "metrics"

    def test_simulate_metrics_out(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "metrics.json"
        status = main(
            [
                "simulate",
                "--program",
                "complex",
                "--n",
                "16",
                "-p",
                "16",
                "--log-json",
                str(log),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert status == 0
        spans = {
            e["name"] for e in obs.read_jsonl(log) if e["type"] == "span"
        }
        assert {"allocate", "schedule", "simulate"} <= spans
        metrics = json.loads(metrics_path.read_text())
        assert metrics["histograms"]["solver.iterations"]["count"] >= 1
        assert 0.0 < metrics["gauges"]["sim.utilization"] <= 1.0

    def test_obs_report_flag(self, capsys):
        status = main(
            [
                "compile",
                "--program",
                "complex",
                "--n",
                "16",
                "-p",
                "16",
                "--obs-report",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "run report" in out
        assert "allocate" in out
        assert "solver.attempts" in out

    def test_flags_leave_global_state_disabled(self, tmp_path):
        main(
            [
                "compile",
                "--program",
                "complex",
                "--n",
                "16",
                "-p",
                "16",
                "--metrics-out",
                str(tmp_path / "m.json"),
            ]
        )
        assert not obs.enabled()

    def test_trace_includes_pipeline_track(self, tmp_path):
        out = tmp_path / "trace.json"
        status = main(
            [
                "trace",
                "--program",
                "complex",
                "--n",
                "16",
                "-p",
                "16",
                "-o",
                str(out),
            ]
        )
        assert status == 0
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {0, 1}
        pipeline_names = {
            e["name"] for e in events if e["ph"] == "X" and e["pid"] == 1
        }
        assert {"compile", "allocate", "schedule", "simulate"} <= pipeline_names
        thread_labels = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 0
        }
        assert "proc 0" in thread_labels
        assert not obs.enabled()
