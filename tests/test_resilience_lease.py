"""Lease records: atomic claims, heartbeats, expiry, reclaim.

The unit tests drive a shared virtual clock through every lifecycle
transition; the hypothesis property test then lets hypothesis pick
arbitrary interleavings of claim/heartbeat/expiry/reclaim across
competing workers and checks the invariant the whole resilient engine
rests on: every job is *completed* exactly once, no matter who dies
when.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.resilience import LeaseManager, lease_key
from repro.resilience.lease import ACTIVE, RELEASED


class SharedClock:
    """One mutable wall clock injected into every competing manager."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def manager(root, owner, clock, ttl=10.0):
    return LeaseManager(root, owner=owner, ttl=ttl, clock=clock)


class TestLeaseKey:
    def test_safe_ids_pass_through(self):
        assert lease_key("job-12_a") == "job-12_a"

    def test_unsafe_ids_hash(self):
        key = lease_key("../../etc/passwd")
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_long_ids_hash(self):
        assert len(lease_key("x" * 81)) == 64

    def test_distinct_ids_distinct_keys(self):
        assert lease_key("a b") != lease_key("a c")


class TestLeaseLifecycle:
    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValidationError):
            LeaseManager(tmp_path, owner="w", ttl=0.0)

    def test_claim_fresh(self, tmp_path):
        clock = SharedClock()
        w = manager(tmp_path, "w1", clock)
        record = w.claim("job-a")
        assert record is not None
        assert record.attempt == 1
        assert record.owner == "w1"
        assert record.state == ACTIVE
        assert record.expires_at == record.claimed_at + 10.0
        assert w.path_for("job-a").exists()

    def test_claim_conflict_returns_none(self, tmp_path):
        clock = SharedClock()
        w1 = manager(tmp_path, "w1", clock)
        w2 = manager(tmp_path, "w2", clock)
        assert w1.claim("job-a") is not None
        assert w2.claim("job-a") is None

    def test_reclaim_own_active_lease_is_idempotent(self, tmp_path):
        clock = SharedClock()
        w = manager(tmp_path, "w1", clock)
        first = w.claim("job-a")
        again = w.claim("job-a")
        assert again is not None
        assert again.attempt == first.attempt == 1

    def test_heartbeat_extends_and_stamps_stage(self, tmp_path):
        clock = SharedClock()
        w = manager(tmp_path, "w1", clock)
        w.claim("job-a")
        clock.advance(6.0)
        assert w.heartbeat("job-a", stage="schedule")
        record = w.read("job-a")
        assert record.expires_at == clock.now + 10.0
        assert record.heartbeats == 1
        assert record.stage == "schedule"

    def test_heartbeat_refuses_expired_lease(self, tmp_path):
        clock = SharedClock()
        w = manager(tmp_path, "w1", clock)
        w.claim("job-a")
        clock.advance(11.0)
        assert not w.heartbeat("job-a")

    def test_heartbeat_after_reclaim_reports_lost(self, tmp_path):
        clock = SharedClock()
        w1 = manager(tmp_path, "w1", clock)
        w2 = manager(tmp_path, "w2", clock)
        w1.claim("job-a")
        clock.advance(11.0)  # w1 "died": no heartbeats until expiry
        stolen = w2.claim("job-a")
        assert stolen is not None
        assert stolen.attempt == 2
        assert not w1.heartbeat("job-a")
        assert not w1.release("job-a")

    def test_expired_lease_not_reclaimable_before_expiry(self, tmp_path):
        clock = SharedClock()
        w1 = manager(tmp_path, "w1", clock)
        w2 = manager(tmp_path, "w2", clock)
        w1.claim("job-a")
        clock.advance(9.9)
        assert w2.claim("job-a") is None
        clock.advance(0.2)
        assert w2.claim("job-a") is not None

    def test_release_writes_tombstone(self, tmp_path):
        clock = SharedClock()
        w = manager(tmp_path, "w1", clock)
        w.claim("job-a")
        assert w.release("job-a")
        record = w.read("job-a")
        assert record.state == RELEASED
        assert record.attempt == 1
        assert w.path_for("job-a").exists()  # tombstone, not deletion

    def test_reclaim_of_tombstone_preserves_attempt_counter(self, tmp_path):
        clock = SharedClock()
        w1 = manager(tmp_path, "w1", clock)
        w2 = manager(tmp_path, "w2", clock)
        w1.claim("job-a")
        w1.release("job-a")
        # e.g. the result artifact was found corrupt: the re-run must
        # look like attempt 2, not a fresh attempt 1.
        record = w2.claim("job-a")
        assert record.attempt == 2

    def test_claim_ttl_override_applies_once(self, tmp_path):
        clock = SharedClock()
        w1 = manager(tmp_path, "w1", clock)
        w2 = manager(tmp_path, "w2", clock)
        short = w1.claim("job-a", ttl=0.5)  # chaos expire injection
        assert short.ttl == 0.5
        clock.advance(0.6)
        again = w2.claim("job-a")
        assert again.ttl == 10.0  # manager default, not the injected ttl

    def test_torn_record_is_dropped_and_reclaimed(self, tmp_path):
        clock = SharedClock()
        w = manager(tmp_path, "w1", clock)
        path = w.path_for("job-a")
        path.write_text('{"kind": "batch-le')  # torn write
        record = w.claim("job-a")
        assert record is not None
        assert record.attempt == 1

    def test_leases_lists_sorted_records(self, tmp_path):
        clock = SharedClock()
        w = manager(tmp_path, "w1", clock)
        for job in ("j2", "j0", "j1"):
            w.claim(job)
        assert [r.job_id for r in w.leases()] == ["j0", "j1", "j2"]


# --------------------------------------------------------------------------
# Property: any interleaving of claim / heartbeat / expiry / reclaim
# operations across competing workers completes each job exactly once.
# --------------------------------------------------------------------------

# An operation is (worker, job, kind); "advance" moves the shared clock
# far enough to expire any active lease (the adversarial scheduler
# freezing a worker mid-job).
_OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),   # worker index
        st.integers(min_value=0, max_value=3),   # job index
        st.sampled_from(["claim", "heartbeat", "advance", "crash"]),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_exactly_once_completion_under_any_interleaving(tmp_path_factory, ops):
    """claim -> work -> release, with crashes and expiry races injected
    between any two steps: every job's result is written exactly once."""
    root = tmp_path_factory.mktemp("leases")
    clock = SharedClock()
    jobs = [f"job-{i}" for i in range(4)]
    workers = [manager(root, f"w{i}", clock, ttl=10.0) for i in range(3)]
    # Worker-local in-flight claims; completions[job] counts result
    # writes, the thing that must end up exactly 1 per job.
    holding = [dict() for _ in workers]
    completions = {job: 0 for job in jobs}
    results = Path(root) / "results"
    results.mkdir(exist_ok=True)

    def finish(w, idx, job):
        # The engine's completion path: (idempotent) result write gated
        # on still holding the lease, then release.
        record = workers[w].read(job)
        if record is None or record.owner != workers[w].owner:
            holding[w].pop(job, None)
            return
        out = results / f"{job}.txt"
        if not out.exists():
            out.write_text(f"{job}: deterministic result\n")
            completions[job] += 1
        workers[w].release(job)
        holding[w].pop(job, None)

    for w, j, kind in ops:
        job = jobs[j]
        if kind == "claim":
            if (results / f"{job}.txt").exists():
                continue  # engine skips jobs with verified results
            record = workers[w].claim(job)
            if record is not None:
                holding[w][job] = record
        elif kind == "heartbeat":
            if job in holding[w]:
                if not workers[w].heartbeat(job, stage="simulate"):
                    holding[w].pop(job)  # lost ownership: abandon
        elif kind == "advance":
            clock.advance(11.0)  # expire every active lease
        elif kind == "crash":
            holding[w].clear()  # SIGKILL: claims vanish, leases remain

        # Any worker holding a fresh claim finishes it immediately;
        # hypothesis explores the dangerous orderings via the ops above.
        for held in list(holding[w]):
            finish(w, w, held)

    # Drain: surviving workers sweep all unfinished jobs to completion,
    # exactly like the parent respawning workers until the batch drains.
    for _ in range(4):
        for w, worker in enumerate(workers):
            for job in jobs:
                if (results / f"{job}.txt").exists():
                    continue
                if worker.claim(job) is not None:
                    finish(w, w, job)
        clock.advance(11.0)

    assert completions == {job: 1 for job in jobs}
    for worker in workers:
        for record in worker.leases():
            assert record.state in (ACTIVE, RELEASED)
