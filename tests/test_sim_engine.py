"""Unit tests for the machine simulator."""

import pytest

from repro.codegen.program import ComputeOp, MPMDProgram, RecvOp, SendOp
from repro.errors import DeadlockError
from repro.machine.fidelity import HardwareFidelity
from repro.sim.engine import MachineSimulator
from repro.sim.trace import ExecutionTrace, TraceEvent


def hand_program() -> MPMDProgram:
    """Proc 0 computes 'a' (2 s) then sends; proc 1 receives then computes
    'b' (1 s). Edge delay 0.5 s, send 0.1 s, recv 0.2 s."""
    program = MPMDProgram(total_processors=2)
    program.streams[0] = [
        ComputeOp("a", 2.0, parallel_cost=1.5),
        SendOp("a", "b", startup_cost=0.1, byte_cost=0.0),
    ]
    program.streams[1] = [
        RecvOp("a", "b", startup_cost=0.2, byte_cost=0.0, network_delay=0.5),
        ComputeOp("b", 1.0, parallel_cost=0.0),
    ]
    program.senders[("a", "b")] = (0,)
    program.receivers[("a", "b")] = (1,)
    program.info["allocation"] = {"a": 1, "b": 1}
    return program


class TestIdealExecution:
    def test_timing_exact(self):
        result = MachineSimulator().run(hand_program())
        # a: [0, 2]; send: [2, 2.1]; data ready: 2.6; recv: [2.6, 2.8];
        # b: [2.8, 3.8].
        assert result.processor_finish[0] == pytest.approx(2.1)
        assert result.processor_finish[1] == pytest.approx(3.8)
        assert result.makespan == pytest.approx(3.8)

    def test_node_finish_times(self):
        result = MachineSimulator().run(hand_program())
        finish = result.node_finish_times()
        assert finish["a"] == pytest.approx(2.1)  # includes its send
        assert finish["b"] == pytest.approx(3.8)

    def test_wait_recorded_in_trace(self):
        result = MachineSimulator().run(hand_program())
        waits = [e for e in result.trace if e.kind == "wait"]
        assert len(waits) == 1
        assert waits[0].processor == 1
        assert waits[0].duration == pytest.approx(2.6)

    def test_trace_sequential_per_processor(self):
        result = MachineSimulator().run(hand_program())
        result.trace.validate_sequential()

    def test_busy_fraction(self):
        result = MachineSimulator().run(hand_program())
        # Busy: proc0 2.1, proc1 1.2; total 3.3 of 2 * 3.8.
        assert result.busy_fraction(2) == pytest.approx(3.3 / 7.6)

    def test_record_trace_false(self):
        result = MachineSimulator().run(hand_program(), record_trace=False)
        assert len(result.trace) == 0
        assert result.makespan == pytest.approx(3.8)


class TestFidelityEffects:
    def test_compute_curvature_slows_parallel_part(self):
        fidelity = HardwareFidelity(compute_curvature=0.1, p_ref=1)
        # width of 'a' is 1 -> scale = 1 + 0.1*(1-1)/1 = 1: no change.
        result = MachineSimulator(fidelity).run(hand_program())
        assert result.makespan == pytest.approx(3.8)

        program = hand_program()
        program.info["allocation"] = {"a": 8, "b": 1}
        result = MachineSimulator(fidelity).run(program)
        # scale = 1 + 0.1 * 7 = 1.7 on the 1.5 s parallel part of 'a'.
        assert result.makespan == pytest.approx(3.8 + 1.5 * 0.7)

    def test_startup_serialization_hits_second_message(self):
        fidelity = HardwareFidelity(startup_serialization=1.0)
        program = MPMDProgram(total_processors=2)
        program.streams[0] = [
            ComputeOp("a", 1.0),
            SendOp("a", "b", 0.1, 0.0),
            SendOp("a", "c", 0.1, 0.0),
        ]
        program.streams[1] = [
            RecvOp("a", "b", 0.0, 0.0),
            ComputeOp("b", 0.0),
            RecvOp("a", "c", 0.0, 0.0),
            ComputeOp("c", 0.0),
        ]
        for edge in (("a", "b"), ("a", "c")):
            program.senders[edge] = (0,)
            program.receivers[edge] = (1,)
        program.info["allocation"] = {"a": 1, "b": 1, "c": 1}
        result = MachineSimulator(fidelity).run(program)
        # First send 0.1, second doubled to 0.2.
        assert result.processor_finish[0] == pytest.approx(1.3)

    def test_jitter_reproducible(self):
        fidelity = HardwareFidelity(jitter=0.05, seed=11)
        r1 = MachineSimulator(fidelity).run(hand_program())
        r2 = MachineSimulator(fidelity).run(hand_program())
        assert r1.makespan == r2.makespan
        assert r1.makespan != pytest.approx(3.8, abs=1e-9)

    def test_different_seeds_differ(self):
        r1 = MachineSimulator(HardwareFidelity(jitter=0.05, seed=1)).run(hand_program())
        r2 = MachineSimulator(HardwareFidelity(jitter=0.05, seed=2)).run(hand_program())
        assert r1.makespan != r2.makespan


class TestDeadlockDetection:
    def test_recv_without_send_deadlocks(self):
        program = MPMDProgram(total_processors=1)
        program.streams[0] = [RecvOp("ghost", "a", 0.1, 0.0)]
        program.senders[("ghost", "a")] = (1,)  # nobody will ever send
        program.receivers[("ghost", "a")] = (0,)
        # validate() would flag it; bypass to exercise the engine guard.
        program.streams[0].insert(0, SendOp("ghost", "a", 0.0, 0.0))
        program.streams[0].append(SendOp("ghost", "a", 0.0, 0.0))
        # Now two sends and one recv but senders count is 1... construct a
        # genuinely blocked case instead: two procs waiting on each other.
        program = MPMDProgram(total_processors=2)
        program.streams[0] = [
            RecvOp("b", "a", 0.0, 0.0),
            ComputeOp("a", 0.0),
            SendOp("a", "b", 0.0, 0.0),
        ]
        program.streams[1] = [
            RecvOp("a", "b", 0.0, 0.0),
            ComputeOp("b", 0.0),
            SendOp("b", "a", 0.0, 0.0),
        ]
        program.senders[("a", "b")] = (0,)
        program.receivers[("a", "b")] = (1,)
        program.senders[("b", "a")] = (1,)
        program.receivers[("b", "a")] = (0,)
        with pytest.raises(DeadlockError, match="no progress"):
            MachineSimulator().run(program)


class TestTrace:
    def test_event_validation(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            TraceEvent(processor=0, kind="compute", node="a", start=2.0, end=1.0)

    def test_overlap_detected(self):
        from repro.errors import SimulationError

        trace = ExecutionTrace()
        trace.add(TraceEvent(0, "compute", "a", 0.0, 2.0))
        trace.add(TraceEvent(0, "compute", "b", 1.0, 3.0))
        with pytest.raises(SimulationError, match="overlap"):
            trace.validate_sequential()

    def test_for_processor_and_node(self):
        trace = ExecutionTrace()
        trace.add(TraceEvent(0, "compute", "a", 0.0, 1.0))
        trace.add(TraceEvent(1, "compute", "b", 0.0, 2.0))
        assert len(trace.for_processor(0)) == 1
        assert trace.for_node("b")[0].end == 2.0

    def test_busy_time_excludes_waits(self):
        trace = ExecutionTrace()
        trace.add(TraceEvent(0, "wait", "a", 0.0, 5.0))
        trace.add(TraceEvent(0, "compute", "a", 5.0, 6.0))
        assert trace.busy_time(0) == pytest.approx(1.0)
