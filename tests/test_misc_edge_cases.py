"""Edge-case sweep across small utility branches."""

import pytest

from repro.costs.processing import AmdahlProcessingCost
from repro.costs.transfer import ArrayTransfer, TransferKind
from repro.graph.mdg import MDG
from repro.utils.tables import format_table


class TestFormatTable:
    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_float_format_override(self):
        text = format_table(["v"], [[3.14159]], float_format="{:.1f}")
        assert "3.1" in text
        assert "3.14" not in text

    def test_title_prepended(self):
        text = format_table(["a"], [[1]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "| a" in text

    def test_wide_cells_stretch_columns(self):
        text = format_table(["x"], [["short"], ["a much longer cell"]])
        widths = {len(line) for line in text.splitlines()}
        assert len(widths) == 1


class TestMDGEdgeHelpers:
    def test_total_bytes(self):
        mdg = MDG("g")
        mdg.add_node("a", AmdahlProcessingCost(0.1, 1.0))
        mdg.add_node("b", AmdahlProcessingCost(0.1, 1.0))
        edge = mdg.add_edge(
            "a",
            "b",
            [
                ArrayTransfer(100.0, TransferKind.ROW2ROW),
                ArrayTransfer(200.0, TransferKind.ROW2COL),
            ],
        )
        assert edge.total_bytes == 300.0

    def test_repr(self):
        mdg = MDG("g")
        mdg.add_node("a", AmdahlProcessingCost(0.1, 1.0))
        assert "nodes=1" in repr(mdg)


class TestAllocationHelpers:
    def test_max_processors(self):
        from repro.allocation.result import Allocation

        alloc = Allocation(processors={"a": 2.0, "b": 8.0})
        assert alloc.max_processors() == 8.0


class TestScheduleRepr:
    def test_empty_and_filled(self):
        from repro.scheduling.schedule import Schedule, ScheduledNode

        mdg = MDG("g")
        mdg.add_node("a", AmdahlProcessingCost(0.1, 1.0))
        schedule = Schedule(mdg=mdg, total_processors=2)
        assert "n/a" in repr(schedule)
        schedule.add(ScheduledNode("a", 0.0, 1.0, (0,)))
        assert "makespan=1" in repr(schedule)

    def test_zero_duration_schedule_utilization(self):
        from repro.costs.processing import ZeroProcessingCost
        from repro.scheduling.schedule import Schedule, ScheduledNode

        mdg = MDG("g")
        mdg.add_node("a", ZeroProcessingCost())
        schedule = Schedule(mdg=mdg, total_processors=2)
        schedule.add(ScheduledNode("a", 0.0, 0.0, (0,)))
        assert schedule.utilization() == 1.0
        assert schedule.busy_profile() == []


class TestTransferKindValues:
    def test_round_trip_through_value(self):
        for kind in TransferKind:
            assert TransferKind(kind.value) is kind


class TestVariableLayoutErrors:
    def test_unknown_lookups(self):
        from repro.allocation.variables import VariableLayout
        from repro.errors import AllocationError

        mdg = MDG("g")
        mdg.add_node("a", AmdahlProcessingCost(0.1, 1.0))
        layout = VariableLayout(mdg, [])
        with pytest.raises(AllocationError):
            layout.x_index("ghost")
        with pytest.raises(AllocationError):
            layout.m_index(("a", "b"))

    def test_empty_graph_rejected(self):
        from repro.allocation.variables import VariableLayout
        from repro.errors import AllocationError

        with pytest.raises(AllocationError):
            VariableLayout(MDG("void"), [])


class TestSimulationResultHelpers:
    def test_busy_fraction_zero_makespan(self):
        from repro.sim.engine import SimulationResult
        from repro.sim.trace import ExecutionTrace

        result = SimulationResult(
            makespan=0.0, processor_finish={}, trace=ExecutionTrace()
        )
        assert result.busy_fraction(4) == 1.0


class TestCompiledPosynomialRepr:
    def test_repr(self):
        from repro.costs.posynomial import Posynomial

        compiled = (Posynomial.variable("p") + 1.0).compile(["p"])
        assert "n_terms=2" in repr(compiled)


class TestMonomialAsPosynomial:
    def test_round_trip(self):
        from repro.costs.posynomial import Monomial

        mono = Monomial(2.0, {"p": 1.5})
        poly = mono.as_posynomial()
        assert poly.is_monomial()
        assert poly.terms[0] == mono

    def test_add_monomial_to_posynomial(self):
        from repro.costs.posynomial import Monomial, Posynomial

        result = Posynomial.variable("p") + Monomial(2.0)
        assert result.evaluate({"p": 1.0}) == pytest.approx(3.0)
