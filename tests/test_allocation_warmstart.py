"""Tests for solver warm starts and failure paths."""

import pytest

from repro.allocation.baselines import greedy_critical_path_allocation
from repro.allocation.formulation import ConvexAllocationProblem
from repro.allocation.solver import ConvexSolverOptions, solve_allocation
from repro.errors import SolverError
from repro.graph.generators import fork_join_mdg, paper_example_mdg
from repro.programs import complex_matmul_program


class TestWarmStart:
    def test_warm_start_reaches_same_optimum(self, cm5_16):
        mdg = complex_matmul_program(64).mdg.normalized()
        greedy = greedy_critical_path_allocation(mdg, cm5_16)
        warm = solve_allocation(
            mdg,
            cm5_16,
            ConvexSolverOptions(
                initial_allocation=dict(greedy.processors),
                multistart_targets=(),
            ),
        )
        cold = solve_allocation(
            mdg, cm5_16, ConvexSolverOptions(multistart_targets=(4.0,))
        )
        assert warm.phi == pytest.approx(cold.phi, rel=1e-4)

    def test_warm_start_point_is_feasible(self, cm5_16):
        mdg = fork_join_mdg(3, seed=2).normalized()
        problem = ConvexAllocationProblem(mdg, cm5_16)
        z0 = problem.initial_point_from_allocation(
            {name: 3.7 for name in mdg.node_names()}
        )
        assert problem.max_violation(z0) <= 1e-9

    def test_warm_start_clamps_out_of_range_counts(self, cm5_16):
        mdg = fork_join_mdg(2, seed=0).normalized()
        problem = ConvexAllocationProblem(mdg, cm5_16)
        z0 = problem.initial_point_from_allocation(
            {name: 999.0 for name in mdg.node_names()}
        )
        assert problem.max_violation(z0) <= 1e-9

    def test_warm_start_defaults_missing_nodes_to_one(self, cm5_16):
        mdg = fork_join_mdg(2, seed=0).normalized()
        problem = ConvexAllocationProblem(mdg, cm5_16)
        z0 = problem.initial_point_from_allocation({})
        assert problem.max_violation(z0) <= 1e-9

    def test_attempt_records_start_kind(self, machine4):
        mdg = paper_example_mdg().normalized()
        result = solve_allocation(
            mdg,
            machine4,
            ConvexSolverOptions(
                initial_allocation={n: 2.0 for n in mdg.node_names()},
                multistart_targets=(),
            ),
        )
        assert any(a.get("start") == "warm" for a in result.info["attempts"])


class TestFailurePaths:
    def test_all_methods_failing_raises_solver_error(self, machine4, monkeypatch):
        import repro.allocation.solver as solver_module

        def always_explode(problem, method, z0, options):
            raise ValueError("synthetic numerical blow-up")

        monkeypatch.setattr(solver_module, "_run_method", always_explode)
        with pytest.raises(SolverError, match="failed"):
            solve_allocation(paper_example_mdg().normalized(), machine4)

    def test_infeasible_results_rejected(self, machine4, monkeypatch):
        """A 'solution' violating constraints must not be accepted."""
        import numpy as np

        import repro.allocation.solver as solver_module

        class FakeResult:
            def __init__(self, n):
                self.x = np.full(n, 50.0)  # wildly out of bounds
                self.status = 0
                self.message = "fake"
                self.nit = 1

        def fake_run(problem, method, z0, options):
            return FakeResult(problem.n_vars)

        monkeypatch.setattr(solver_module, "_run_method", fake_run)
        with pytest.raises(SolverError):
            solve_allocation(paper_example_mdg().normalized(), machine4)
