"""Unit tests for baseline schedulers and the Theorem 1/3 verifiers."""

import pytest

from repro.allocation.solver import solve_allocation
from repro.analysis.metrics import serial_time
from repro.graph.generators import (
    fork_join_mdg,
    layered_random_mdg,
    paper_example_mdg,
)
from repro.scheduling.baselines import serial_schedule, spmd_schedule
from repro.scheduling.bounds import verify_theorem1, verify_theorem3
from repro.scheduling.psa import PSAOptions, prioritized_schedule


class TestSpmdSchedule:
    def test_serialized_chain(self, cm5_16):
        mdg = fork_join_mdg(3, seed=0).normalized()
        schedule = spmd_schedule(mdg, cm5_16)
        entries = sorted(schedule.entries.values(), key=lambda e: e.start)
        for first, second in zip(entries, entries[1:]):
            assert second.start >= first.finish - 1e-12
        assert all(e.width == 16 for e in schedule)

    def test_validates(self, cm5_16):
        schedule = spmd_schedule(fork_join_mdg(3, seed=0), cm5_16)
        schedule.validate(schedule.info["weights"])

    def test_makespan_is_sum_plus_delays(self, machine4):
        mdg = fork_join_mdg(2, seed=0, transfer_probability=0.0).normalized()
        schedule = spmd_schedule(mdg, machine4)
        total = sum(
            schedule.info["weights"].node_weight(n) for n in mdg.node_names()
        )
        assert schedule.makespan == pytest.approx(total)

    def test_non_power_machine_uses_power_group(self):
        from repro.costs.transfer import TransferCostParameters
        from repro.machine.parameters import MachineParameters

        machine = MachineParameters("m6", 6, TransferCostParameters.zero())
        schedule = spmd_schedule(fork_join_mdg(2, seed=0), machine)
        assert all(e.width == 4 for e in schedule)


class TestSerialSchedule:
    def test_single_processor(self, cm5_16):
        mdg = fork_join_mdg(2, seed=0).normalized()
        schedule = serial_schedule(mdg, cm5_16)
        assert all(e.processors == (0,) for e in schedule)

    def test_makespan_at_least_serial_compute(self, cm5_16):
        mdg = fork_join_mdg(2, seed=0).normalized()
        schedule = serial_schedule(mdg, cm5_16)
        assert schedule.makespan >= serial_time(mdg) * (1 - 1e-12)


class TestTheoremVerifiers:
    def make_schedule(self, cm5_16, bound=None):
        mdg = layered_random_mdg(3, 3, seed=20).normalized()
        alloc = solve_allocation(mdg, cm5_16)
        options = PSAOptions(processor_bound=bound) if bound else None
        schedule = prioritized_schedule(mdg, alloc.processors, cm5_16, options)
        return mdg, alloc, schedule

    def test_theorem1_holds(self, cm5_16):
        _, _, schedule = self.make_schedule(cm5_16)
        report = verify_theorem1(schedule, cm5_16)
        assert report.holds
        assert report.t_psa == pytest.approx(schedule.makespan)
        assert report.factor > 1.0

    def test_theorem3_holds(self, cm5_16):
        _, alloc, schedule = self.make_schedule(cm5_16)
        report = verify_theorem3(schedule, cm5_16, alloc.phi)
        assert report.holds
        assert report.reference == pytest.approx(alloc.phi)

    def test_factors_match_formulas(self, cm5_16):
        from repro.allocation.rounding import theorem1_factor, theorem3_factor

        _, alloc, schedule = self.make_schedule(cm5_16, bound=4)
        r1 = verify_theorem1(schedule, cm5_16)
        r3 = verify_theorem3(schedule, cm5_16, alloc.phi)
        assert r1.factor == pytest.approx(theorem1_factor(16, 4))
        assert r3.factor == pytest.approx(theorem3_factor(16, 4))

    def test_tightness_below_one(self, cm5_16):
        _, alloc, schedule = self.make_schedule(cm5_16)
        report = verify_theorem3(schedule, cm5_16, alloc.phi)
        assert 0.0 < report.tightness <= 1.0

    def test_requires_psa_info(self, cm5_16):
        from repro.errors import SchedulingError
        from repro.scheduling.schedule import Schedule

        bare = Schedule(mdg=fork_join_mdg(2, seed=0).normalized(), total_processors=16)
        with pytest.raises(SchedulingError, match="allocation"):
            verify_theorem1(bare, cm5_16)

    def test_report_failure_detection(self):
        """A fabricated too-slow schedule must fail the bound check."""
        from repro.scheduling.bounds import TheoremReport

        report = TheoremReport(
            theorem="theorem1", t_psa=100.0, reference=1.0, factor=3.0, bound=3.0
        )
        assert not report.holds
        assert report.tightness > 1.0
