"""The obs rule family: OBS001/OBS002 run-log findings via repro.check."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.check import Severity, check_file
from repro.check.obs_passes import (
    OBS_PASSES,
    RUNLOG_CORRUPT_KEY,
    RUNLOG_DOC_KEY,
    ObsRunLogPass,
    is_run_log_doc,
)
from repro.check.core import Analyzer, CheckContext
from repro.check.registry import FAMILIES, all_rules, passes_for_families
from repro.cli import main
from repro.errors import CheckError


def span(name, ts, dur, depth, parent=None):
    return {
        "type": "span",
        "name": name,
        "ts": ts,
        "dur": dur,
        "depth": depth,
        "parent": parent,
        "attrs": {},
    }


CLEAN = [
    {"type": "run_start", "ts": 0.0},
    span("allocate", 0.1, 0.4, 1, "compile"),
    span("compile", 0.0, 1.0, 0),
    {"type": "metrics", "ts": 1.0, "metrics": {}},
]


def write_log(tmp_path, records, name="run.jsonl"):
    path = tmp_path / name
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


class TestRegistry:
    def test_obs_family_registered(self):
        assert "obs" in FAMILIES
        assert passes_for_families(("obs",)) != []
        assert all(isinstance(p, ObsRunLogPass) for p in passes_for_families(("obs",)))

    def test_rules_present_with_expected_severities(self):
        rules = {r.rule_id: r for r in all_rules()}
        assert rules["OBS001"].severity is Severity.ERROR
        assert rules["OBS002"].severity is Severity.WARNING

    def test_is_run_log_doc(self):
        assert is_run_log_doc({RUNLOG_DOC_KEY: []})
        assert not is_run_log_doc({"nodes": []})
        assert not is_run_log_doc(None)

    def test_pass_skips_non_runlog_documents(self):
        analyzer = Analyzer([cls() for cls in OBS_PASSES])
        report = analyzer.run(CheckContext(doc={"nodes": [], "edges": []}))
        assert len(report) == 0
        assert "obs.runlog" in report.passes_run


class TestCheckFile:
    def test_clean_log_has_no_findings(self, tmp_path):
        report = check_file(write_log(tmp_path, CLEAN))
        assert len(report) == 0
        assert report.passes_run == ["obs.runlog"]
        assert not report.has_errors

    def test_schema_problem_is_obs001_error_with_location(self, tmp_path):
        records = [
            {"type": "run_start", "ts": 0.0},
            {"type": "span", "name": "allocate"},  # no ts/dur/depth
        ]
        report = check_file(write_log(tmp_path, records))
        findings = [f for f in report if f.rule_id == "OBS001"]
        assert findings, report.render_text()
        assert all(f.severity is Severity.ERROR for f in findings)
        assert any(f.location == "$[1]" for f in findings)

    def test_structure_problem_is_obs002_warning(self, tmp_path):
        records = [
            {"type": "run_start", "ts": 0.0},
            span("orphan", 0.1, 0.1, 2),
            span("root", 0.0, 1.0, 0),
        ]
        report = check_file(write_log(tmp_path, records))
        findings = [f for f in report if f.rule_id == "OBS002"]
        assert findings
        assert all(f.severity is Severity.WARNING for f in findings)
        assert not report.has_errors

    def test_corrupt_lines_reported_under_obs001(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"type": "run_start", "ts": 0.0}) + "\n"
            + '{"type": "span", "nam'
        )
        report = check_file(path)
        assert any(
            f.rule_id == "OBS001" and "did not parse" in f.message
            for f in report
        )

    def test_unreadable_log_raises_check_error(self, tmp_path):
        with pytest.raises(CheckError, match="cannot read run log"):
            check_file(tmp_path / "missing.jsonl")

    def test_corrupt_key_zero_is_quiet(self):
        analyzer = Analyzer([cls() for cls in OBS_PASSES])
        report = analyzer.run(
            CheckContext(doc={RUNLOG_DOC_KEY: CLEAN, RUNLOG_CORRUPT_KEY: 0})
        )
        assert len(report) == 0

    def test_merged_batch_log_validates_clean(self, tmp_path):
        """A parent log with merged worker subtrees must not be flagged:
        the per-job grouping and root-depth rules exist exactly for it."""
        from repro.obs.bundle import capture_bundle, merge_bundle

        worker = obs.Telemetry(sinks=[obs.MemorySink()])
        with obs.use(worker):
            with obs.span("compile"):
                with obs.span("allocate"):
                    obs.event("solver.iteration", nit=1, objective=1.0)
        bundle = capture_bundle(worker)

        path = tmp_path / "parent.jsonl"
        parent = obs.Telemetry(sinks=[obs.JsonlSink(path)])
        with obs.use(parent):
            with obs.span("batch"):
                merge_bundle(parent, bundle, job_id="j1")
                merge_bundle(parent, bundle, job_id="j2")
        parent.close()

        report = check_file(path)
        assert len(report) == 0, report.render_text()


class TestCli:
    def test_check_jsonl_exit_codes(self, tmp_path, capsys):
        clean = write_log(tmp_path, CLEAN, "clean.jsonl")
        assert main(["check", str(clean)]) == 0
        capsys.readouterr()

        bad = write_log(
            tmp_path,
            [{"type": "run_start", "ts": 0.0}, {"type": "span", "name": "x"}],
            "bad.jsonl",
        )
        assert main(["check", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "OBS001" in out

    def test_check_directory_scans_jsonl(self, tmp_path, capsys):
        logs = tmp_path / "logs"
        logs.mkdir()
        write_log(logs, CLEAN, "a.jsonl")
        write_log(
            logs,
            [{"type": "run_start", "ts": 0.0}, span("neg", 0.0, -1.0, 0)],
            "b.jsonl",
        )
        # Warnings only: exit 0 by default, 1 with --fail-on warning.
        assert main(["check", str(logs)]) == 0
        capsys.readouterr()
        assert main(["check", str(logs), "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "OBS002" in out
        assert "negative" in out

    def test_list_rules_includes_obs(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "OBS001" in out
        assert "OBS002" in out
