"""Unit tests for distributed kernels and the value executor."""

import numpy as np
import pytest

from repro.costs.processing import AmdahlProcessingCost
from repro.costs.transfer import TransferKind
from repro.errors import DistributionError, GraphError, ValidationError
from repro.graph.mdg import MDG
from repro.programs.common import BundleBuilder, array_transfer_1d
from repro.runtime.distribution import DistributedArray, RowBlock
from repro.runtime.executor import AppGraph, AppNode, ValueExecutor
from repro.runtime.kernels import (
    ColTransform,
    MatAdd,
    MatInit,
    MatMul,
    MatSub,
    RowTransform,
)
from repro.runtime.verify import sequential_reference, verify_against_reference


def dist_pair(rows=6, cols=6, p=3, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(rows, cols))
    b = rng.normal(size=(rows, cols))
    da = DistributedArray.from_full(a, RowBlock(rows, cols, p))
    db = DistributedArray.from_full(b, RowBlock(rows, cols, p))
    return a, b, da, db


class TestKernels:
    def test_matadd_local_matches_serial(self):
        a, b, da, db = dist_pair()
        kernel = MatAdd(6, 6)
        full = kernel.serial({"a": a, "b": b})
        for rank in range(3):
            local = kernel.local(rank, {"a": da, "b": db})
            r0, r1, _, _ = RowBlock(6, 6, 3).region(rank)
            assert np.allclose(local, full[r0:r1])

    def test_matsub(self):
        a, b, da, db = dist_pair()
        assert np.allclose(MatSub(6, 6).serial({"a": a, "b": b}), a - b)

    def test_matmul_assembles_b(self):
        a, b, da, db = dist_pair()
        kernel = MatMul(6, 6, 6)
        full = kernel.serial({"a": a, "b": b})
        for rank in range(3):
            local = kernel.local(rank, {"a": da, "b": db})
            r0, r1, _, _ = RowBlock(6, 6, 3).region(rank)
            assert np.allclose(local, full[r0:r1])

    def test_matmul_rectangular(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(6, 3))
        kernel = MatMul(4, 6, 3)
        da = DistributedArray.from_full(a, kernel.input_distribution("a", 2))
        db = DistributedArray.from_full(b, kernel.input_distribution("b", 2))
        out = np.vstack([kernel.local(r, {"a": da, "b": db}) for r in range(2)])
        assert np.allclose(out, a @ b)

    def test_matinit_region(self):
        kernel = MatInit(4, 4, lambda i, j: i * 10.0 + j)
        block = kernel.local_region((2, 4, 0, 4))
        assert np.array_equal(block, np.array([[20, 21, 22, 23], [30, 31, 32, 33]], dtype=float))

    def test_matinit_serial_matches_regions(self):
        kernel = MatInit(5, 3, lambda i, j: np.sin(i) + j)
        full = kernel.serial({})
        dist = kernel.output_distribution(2)
        stacked = np.vstack(
            [kernel.local_region(dist.region(r)) for r in range(2)]
        )
        assert np.allclose(stacked, full)

    def test_row_transform(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(6, 4))
        w = rng.normal(size=(4, 4))
        kernel = RowTransform(6, 4, w)
        dx = DistributedArray.from_full(x, kernel.input_distribution("x", 3))
        out = np.vstack([kernel.local(r, {"x": dx}) for r in range(3)])
        assert np.allclose(out, x @ w.T)

    def test_col_transform(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 6))
        w = rng.normal(size=(4, 4))
        kernel = ColTransform(4, 6, w)
        dx = DistributedArray.from_full(x, kernel.input_distribution("x", 3))
        out = np.hstack([kernel.local(r, {"x": dx}) for r in range(3)])
        assert np.allclose(out, w @ x)

    def test_transform_matrix_shape_checked(self):
        with pytest.raises(DistributionError):
            RowTransform(4, 4, np.eye(3))
        with pytest.raises(DistributionError):
            ColTransform(4, 4, np.eye(3))

    def test_missing_input_rejected(self):
        a, b, da, db = dist_pair()
        with pytest.raises(DistributionError, match="missing"):
            MatAdd(6, 6).local(0, {"a": da})


class TestAppGraph:
    def build_bundle(self):
        b = BundleBuilder("tiny")
        b.add_node("x", AmdahlProcessingCost(0.1, 1.0), MatInit(4, 4, lambda i, j: i + j))
        b.add_node("y", AmdahlProcessingCost(0.1, 1.0), MatInit(4, 4, lambda i, j: i * j))
        b.add_node("s", AmdahlProcessingCost(0.1, 1.0), MatAdd(4, 4))
        b.wire("x", "s", "a", array_transfer_1d(4))
        b.wire("y", "s", "b", array_transfer_1d(4))
        return b.build()

    def test_computational_nodes_topological(self):
        app = self.build_bundle().app
        nodes = app.computational_nodes()
        assert nodes.index("x") < nodes.index("s")
        assert nodes.index("y") < nodes.index("s")

    def test_sink_nodes(self):
        app = self.build_bundle().app
        assert app.sink_nodes() == ["s"]

    def test_kernel_missing_rejected(self):
        mdg = MDG("bad")
        mdg.add_node("a", AmdahlProcessingCost(0.1, 1.0))
        with pytest.raises(GraphError, match="no kernel"):
            AppGraph(mdg, {})

    def test_input_must_be_predecessor(self):
        mdg = MDG("bad")
        mdg.add_node("a", AmdahlProcessingCost(0.1, 1.0))
        mdg.add_node("b", AmdahlProcessingCost(0.1, 1.0))
        # no edge a -> b
        with pytest.raises(GraphError, match="not a predecessor"):
            AppGraph(
                mdg,
                {
                    "a": AppNode("a", MatInit(4, 4, lambda i, j: i)),
                    "b": AppNode(
                        "b",
                        RowTransform(4, 4, np.eye(4)),
                        inputs={"x": "a"},
                    ),
                },
            )

    def test_wrong_input_wiring_rejected(self):
        with pytest.raises(GraphError, match="wants inputs"):
            AppNode("n", MatAdd(4, 4), inputs={"a": "p"})  # missing "b"


class TestValueExecutor:
    def test_matches_reference_various_groups(self):
        bundle = TestAppGraph().build_bundle()
        for alloc in [{"x": 1, "y": 1, "s": 1}, {"x": 2, "y": 3, "s": 4}]:
            report = ValueExecutor(bundle.app).run(alloc)
            verify_against_reference(bundle.app, report)

    def test_transfer_stats_recorded(self):
        bundle = TestAppGraph().build_bundle()
        report = ValueExecutor(bundle.app).run({"x": 2, "y": 2, "s": 2})
        assert len(report.transfers) == 2
        for t in report.transfers:
            assert t.kind == TransferKind.ROW2ROW
            assert t.array_bytes == 4 * 4 * 8
            assert t.bytes_moved == t.array_bytes  # full array moves

    def test_transfers_for_filter(self):
        bundle = TestAppGraph().build_bundle()
        report = ValueExecutor(bundle.app).run({"x": 1, "y": 1, "s": 1})
        assert len(report.transfers_for("x", "s")) == 1
        assert report.transfers_for("s", "x") == []

    def test_missing_allocation_rejected(self):
        bundle = TestAppGraph().build_bundle()
        with pytest.raises(DistributionError, match="missing"):
            ValueExecutor(bundle.app).run({"x": 1, "y": 1})

    def test_outputs_are_sinks(self):
        bundle = TestAppGraph().build_bundle()
        report = ValueExecutor(bundle.app).run({"x": 1, "y": 1, "s": 2})
        assert set(report.outputs) == {"s"}

    def test_verify_detects_corruption(self):
        bundle = TestAppGraph().build_bundle()
        report = ValueExecutor(bundle.app).run({"x": 1, "y": 1, "s": 1})
        report.node_results["s"].blocks[0][0, 0] += 1.0
        with pytest.raises(ValidationError, match="deviates"):
            verify_against_reference(bundle.app, report)

    def test_sequential_reference_values(self):
        bundle = TestAppGraph().build_bundle()
        values = sequential_reference(bundle.app)
        i, j = np.meshgrid(np.arange(4), np.arange(4), indexing="ij")
        assert np.allclose(values["s"], (i + j) + (i * j))
