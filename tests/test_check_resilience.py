"""Resilience pass family (RES001-RES003): leases and chaos specs."""

from __future__ import annotations

import json

from repro.check import Severity, all_rules, check_file, rules_markdown
from repro.check.resilience_passes import is_lease_doc
from repro.resilience import LeaseManager
from repro.resilience.chaos import is_chaos_doc


def write(tmp_path, doc, name="doc.json"):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


def findings(report, rule_id):
    return [f for f in report.findings if f.rule_id == rule_id]


def lease_doc(**payload_overrides):
    payload = {
        "job_id": "j0",
        "owner": "worker-1-pid42",
        "state": "active",
        "attempt": 1,
        "claimed_at": 100.0,
        "expires_at": 105.0,
        "ttl": 5.0,
        "heartbeats": 3,
        "stage": "simulate",
        "nonce": "42-0",
    }
    payload.update(payload_overrides)
    return {
        "kind": "batch-lease",
        "schema_version": 1,
        "key": "j0",
        "payload": payload,
    }


def chaos_doc(**overrides):
    doc = {"kind": "chaos", "schema_version": 1, "seed": 7,
           "kill_jobs": ["j2"]}
    doc.update(overrides)
    return doc


# ----- routing --------------------------------------------------------------


def test_is_lease_doc_discriminates():
    assert is_lease_doc(lease_doc())
    assert not is_lease_doc({"kind": "chaos"})
    assert not is_lease_doc({"kind": "batch-lease", "payload": "nope"})
    assert not is_lease_doc([1])


def test_is_chaos_doc_discriminates():
    assert is_chaos_doc(chaos_doc())
    assert not is_chaos_doc(lease_doc())


def test_check_file_routes_chaos_and_lease_docs(tmp_path):
    clean_chaos = check_file(write(tmp_path, chaos_doc(), "chaos.json"))
    assert not clean_chaos.findings
    clean_lease = check_file(write(tmp_path, lease_doc(), "lease.json"))
    assert not clean_lease.findings
    # Only the resilience family ran (no MDG/manifest false positives).
    assert all(
        p.startswith("resilience.") for p in clean_chaos.passes_run
    )


def test_real_lease_artifact_is_clean(tmp_path):
    leases = LeaseManager(tmp_path, owner="w1", ttl=5.0)
    leases.claim("job-a")
    leases.heartbeat("job-a", stage="schedule")
    report = check_file(leases.path_for("job-a"))
    assert not report.findings


# ----- RES001: lease schema -------------------------------------------------


def test_res001_flags_schema_violations(tmp_path):
    path = write(
        tmp_path,
        lease_doc(
            owner="", state="zombie", attempt=0, heartbeats=-1,
            ttl=0.0, claimed_at="noon",
        ),
    )
    report = check_file(path)
    found = findings(report, "RES001")
    assert len(found) == 6
    assert all(f.severity is Severity.ERROR for f in found)
    locations = {f.location for f in found}
    assert "$.payload.state" in locations
    assert "$.payload.attempt" in locations


def test_res001_expiry_before_claim(tmp_path):
    path = write(tmp_path, lease_doc(claimed_at=20.0, expires_at=10.0))
    report = check_file(path)
    (finding,) = findings(report, "RES001")
    assert "precedes claimed_at" in finding.message
    assert finding.location == "$.payload.expires_at"


# ----- RES002: lifecycle plausibility ---------------------------------------


def test_res002_crash_loop_attempts(tmp_path):
    path = write(tmp_path, lease_doc(attempt=9))
    report = check_file(path)
    (finding,) = findings(report, "RES002")
    assert finding.severity is Severity.WARNING
    assert "crash loop" in finding.message
    assert not findings(report, "RES001")


def test_res002_reclaimed_but_never_heartbeat(tmp_path):
    path = write(tmp_path, lease_doc(attempt=3, heartbeats=0))
    report = check_file(path)
    (finding,) = findings(report, "RES002")
    assert "zero heartbeats" in finding.message


def test_res002_silent_for_released_tombstones(tmp_path):
    path = write(
        tmp_path, lease_doc(state="released", attempt=2, heartbeats=0)
    )
    report = check_file(path)
    assert not findings(report, "RES002")


# ----- RES003: chaos specs --------------------------------------------------


def test_res003_unknown_field_and_bad_seed(tmp_path):
    path = write(
        tmp_path, chaos_doc(seed="seven", kill_job=["j2"])
    )
    report = check_file(path)
    found = findings(report, "RES003")
    assert len(found) == 2
    messages = " | ".join(f.message for f in found)
    assert "unknown chaos field" in messages
    assert "seed" in messages
    locations = {f.location for f in found}
    assert "$.kill_job" in locations
    assert "$.seed" in locations


def test_res003_bad_job_lists_and_numbers(tmp_path):
    path = write(
        tmp_path,
        chaos_doc(
            expire_jobs=["", 3], stall_seconds=-1.0, expire_ttl=0.0
        ),
    )
    report = check_file(path)
    found = findings(report, "RES003")
    assert len(found) == 4
    locations = {f.location for f in found}
    assert "$.expire_jobs[0]" in locations
    assert "$.expire_jobs[1]" in locations
    assert "$.stall_seconds" in locations
    assert "$.expire_ttl" in locations


def test_res003_matches_loader_diagnostics(tmp_path):
    """The static findings and the loader's exception share one core."""
    import pytest

    from repro.errors import ChaosSpecError
    from repro.resilience import load_chaos_spec

    path = write(tmp_path, chaos_doc(frobnicate=1))
    static = findings(check_file(path), "RES003")
    with pytest.raises(ChaosSpecError) as excinfo:
        load_chaos_spec(path)
    assert len(excinfo.value.diagnostics) == len(static) == 1
    assert "frobnicate" in excinfo.value.diagnostics[0]


# ----- registry & docs ------------------------------------------------------


def test_res_rules_registered():
    ids = {rule.rule_id for rule in all_rules()}
    assert {"RES001", "RES002", "RES003"} <= ids


def test_res_rules_in_markdown():
    table = rules_markdown()
    for rule_id in ("RES001", "RES002", "RES003"):
        assert rule_id in table
