"""Unit and property tests for block distributions and redistributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.transfer import TransferKind
from repro.errors import DistributionError
from repro.runtime.distribution import (
    ColBlock,
    DistributedArray,
    Replicated,
    RowBlock,
    classify_transfer,
    redistribution_messages,
)

shapes = st.tuples(
    st.integers(min_value=1, max_value=24), st.integers(min_value=1, max_value=24)
)
group_sizes = st.integers(min_value=1, max_value=8)


class TestRegions:
    def test_row_block_even_split(self):
        d = RowBlock(8, 4, 2)
        assert d.region(0) == (0, 4, 0, 4)
        assert d.region(1) == (4, 8, 0, 4)

    def test_row_block_uneven_split(self):
        d = RowBlock(7, 3, 3)
        sizes = [d.local_shape(r)[0] for r in range(3)]
        assert sizes == [3, 2, 2]
        assert sum(sizes) == 7

    def test_col_block(self):
        d = ColBlock(3, 10, 5)
        assert d.region(2) == (0, 3, 4, 6)

    def test_more_processors_than_rows(self):
        d = RowBlock(2, 4, 5)
        sizes = [d.local_shape(r)[0] for r in range(5)]
        assert sizes == [1, 1, 0, 0, 0]

    def test_replicated_full(self):
        d = Replicated(4, 4, 3)
        for rank in range(3):
            assert d.region(rank) == (0, 4, 0, 4)

    def test_rank_out_of_range(self):
        with pytest.raises(DistributionError):
            RowBlock(4, 4, 2).region(2)


class TestScatterGather:
    @given(shapes, group_sizes)
    @settings(max_examples=30)
    def test_round_trip_row(self, shape, p):
        rows, cols = shape
        array = np.arange(rows * cols, dtype=float).reshape(rows, cols)
        d = RowBlock(rows, cols, p)
        assert np.array_equal(d.gather(d.scatter(array)), array)

    @given(shapes, group_sizes)
    @settings(max_examples=30)
    def test_round_trip_col(self, shape, p):
        rows, cols = shape
        array = np.arange(rows * cols, dtype=float).reshape(rows, cols)
        d = ColBlock(rows, cols, p)
        assert np.array_equal(d.gather(d.scatter(array)), array)

    def test_scatter_shape_mismatch(self):
        with pytest.raises(DistributionError):
            RowBlock(4, 4, 2).scatter(np.zeros((3, 4)))

    def test_gather_missing_block(self):
        d = RowBlock(4, 4, 2)
        blocks = d.scatter(np.ones((4, 4)))
        del blocks[1]
        with pytest.raises(DistributionError, match="missing"):
            d.gather(blocks)

    def test_gather_wrong_block_shape(self):
        d = RowBlock(4, 4, 2)
        blocks = d.scatter(np.ones((4, 4)))
        blocks[0] = np.ones((1, 4))
        with pytest.raises(DistributionError):
            d.gather(blocks)

    def test_replicated_gather_uses_rank0(self):
        d = Replicated(2, 2, 2)
        blocks = d.scatter(np.eye(2))
        assert np.array_equal(d.gather(blocks), np.eye(2))


class TestClassifyTransfer:
    @pytest.mark.parametrize(
        "src,dst,kind",
        [
            (RowBlock, RowBlock, TransferKind.ROW2ROW),
            (ColBlock, ColBlock, TransferKind.COL2COL),
            (RowBlock, ColBlock, TransferKind.ROW2COL),
            (ColBlock, RowBlock, TransferKind.COL2ROW),
        ],
    )
    def test_figure4_patterns(self, src, dst, kind):
        assert classify_transfer(src(8, 8, 2), dst(8, 8, 4)) == kind

    def test_replicated_has_no_pattern(self):
        with pytest.raises(DistributionError):
            classify_transfer(Replicated(8, 8, 2), RowBlock(8, 8, 2))


class TestRedistributionMessages:
    @given(shapes, group_sizes, group_sizes)
    @settings(max_examples=40)
    def test_conservation_row_to_row(self, shape, p_src, p_dst):
        """Every element is sent exactly once (1D case)."""
        rows, cols = shape
        messages = redistribution_messages(
            RowBlock(rows, cols, p_src), RowBlock(rows, cols, p_dst)
        )
        covered = np.zeros((rows, cols), dtype=int)
        for m in messages:
            r0, r1, c0, c1 = m.region
            covered[r0:r1, c0:c1] += 1
        assert np.all(covered == 1)

    @given(shapes, group_sizes, group_sizes)
    @settings(max_examples=40)
    def test_conservation_row_to_col(self, shape, p_src, p_dst):
        """Every element is sent exactly once (2D case)."""
        rows, cols = shape
        messages = redistribution_messages(
            RowBlock(rows, cols, p_src), ColBlock(rows, cols, p_dst)
        )
        covered = np.zeros((rows, cols), dtype=int)
        for m in messages:
            r0, r1, c0, c1 = m.region
            covered[r0:r1, c0:c1] += 1
        assert np.all(covered == 1)

    def test_message_counts_match_paper_1d(self):
        """Same-dimension, p_src = p_dst = p with divisible sizes: exactly
        p messages (one per aligned rank pair)."""
        messages = redistribution_messages(RowBlock(8, 8, 4), RowBlock(8, 8, 4))
        assert len(messages) == 4
        assert all(m.source_rank == m.target_rank for m in messages)

    def test_message_counts_match_paper_2d(self):
        """Dimension-changing: every sender messages every receiver."""
        messages = redistribution_messages(RowBlock(8, 8, 4), ColBlock(8, 8, 2))
        assert len(messages) == 8

    def test_bytes_sum_to_array_size(self):
        messages = redistribution_messages(RowBlock(8, 8, 4), ColBlock(8, 8, 2))
        assert sum(m.bytes for m in messages) == 8 * 8 * 8

    def test_1d_widening(self):
        """p -> 2p row-block: each source rank feeds two target ranks."""
        messages = redistribution_messages(RowBlock(8, 4, 2), RowBlock(8, 4, 4))
        assert len(messages) == 4
        sources = {m.source_rank for m in messages}
        assert sources == {0, 1}

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DistributionError):
            redistribution_messages(RowBlock(4, 4, 2), RowBlock(5, 4, 2))

    def test_replication_target_rejected(self):
        with pytest.raises(DistributionError, match="replication"):
            redistribution_messages(RowBlock(4, 4, 2), Replicated(4, 4, 2))

    def test_replicated_source_spreads_load(self):
        messages = redistribution_messages(Replicated(8, 8, 2), RowBlock(8, 8, 4))
        assert {m.source_rank for m in messages} == {0, 1}


class TestDistributedArrayRedistribute:
    @given(shapes, group_sizes, group_sizes)
    @settings(max_examples=30)
    def test_values_preserved_row_to_col(self, shape, p_src, p_dst):
        rows, cols = shape
        array = np.random.default_rng(0).normal(size=(rows, cols))
        src = DistributedArray.from_full(array, RowBlock(rows, cols, p_src))
        dst = src.redistribute(ColBlock(rows, cols, p_dst))
        assert np.allclose(dst.assemble(), array)

    def test_values_preserved_col_to_row(self):
        array = np.arange(48, dtype=float).reshape(6, 8)
        src = DistributedArray.from_full(array, ColBlock(6, 8, 3))
        dst = src.redistribute(RowBlock(6, 8, 5))
        assert np.array_equal(dst.assemble(), array)

    def test_block_access(self):
        array = np.arange(16, dtype=float).reshape(4, 4)
        da = DistributedArray.from_full(array, RowBlock(4, 4, 2))
        assert np.array_equal(da.block(1), array[2:, :])
        with pytest.raises(DistributionError):
            da.block(7)
