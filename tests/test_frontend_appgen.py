"""Unit tests for DSL-to-executable-app generation."""

import numpy as np
import pytest

from repro.errors import FrontendError
from repro.frontend.appgen import build_app_graph, compile_loop_program
from repro.frontend.ir import LoopProgram
from repro.runtime.executor import ValueExecutor
from repro.runtime.kernels import ColTransform, MatMul, RowTransform
from repro.runtime.verify import sequential_reference, verify_against_reference


def pipeline_source() -> LoopProgram:
    prog = LoopProgram("demo")
    for name in ("A", "B", "C", "D", "E"):
        prog.declare(name, 8, 8)
    prog.loop("iA", "matinit", writes="A")
    prog.loop("iB", "matinit", writes="B")
    prog.loop("mul", "matmul", writes="C", reads=("A", "B"))
    prog.loop("sub", "matsub", writes="D", reads=("C", "A"))
    prog.loop("col", "transform", writes="E", reads=("D",), column_access={"D"})
    return prog


class TestBuildAppGraph:
    def test_executes_and_verifies(self):
        app = build_app_graph(pipeline_source())
        report = ValueExecutor(app).run(
            {name: 2 for name in app.computational_nodes()}
        )
        verify_against_reference(app, report)

    def test_kernel_kinds(self):
        app = build_app_graph(pipeline_source())
        assert isinstance(app.nodes["mul"].kernel, MatMul)
        assert isinstance(app.nodes["col"].kernel, ColTransform)

    def test_row_transform_without_column_access(self):
        prog = LoopProgram("r").declare("A", 8, 8).declare("B", 8, 8)
        prog.loop("i", "matinit", writes="A")
        prog.loop("t", "transform", writes="B", reads=("A",))
        app = build_app_graph(prog)
        assert isinstance(app.nodes["t"].kernel, RowTransform)

    def test_custom_fill(self):
        prog = LoopProgram("f").declare("A", 4, 4)
        prog.loop("i", "matinit", writes="A")
        app = build_app_graph(prog, fills={"i": lambda i, j: i * 100.0 + j})
        values = sequential_reference(app)
        assert values["i"][1, 2] == 102.0

    def test_custom_matrix(self):
        prog = LoopProgram("m").declare("A", 4, 4).declare("B", 4, 4)
        prog.loop("i", "matinit", writes="A")
        prog.loop("t", "transform", writes="B", reads=("A",))
        app = build_app_graph(prog, matrices={"t": 2.0 * np.eye(4)})
        values = sequential_reference(app)
        assert np.allclose(values["t"], 2.0 * values["i"])

    def test_default_fills_deterministic(self):
        app1 = build_app_graph(pipeline_source())
        app2 = build_app_graph(pipeline_source())
        v1 = sequential_reference(app1)
        v2 = sequential_reference(app2)
        assert np.array_equal(v1["col"], v2["col"])

    def test_distinct_loops_get_distinct_fills(self):
        app = build_app_graph(pipeline_source())
        values = sequential_reference(app)
        assert not np.allclose(values["iA"], values["iB"])

    def test_wrong_read_count_rejected(self):
        prog = LoopProgram("bad").declare("A", 4, 4).declare("B", 4, 4)
        prog.loop("i", "matinit", writes="A")
        prog.loop("m", "matmul", writes="B", reads=("A",))
        with pytest.raises(FrontendError, match="exactly 2"):
            build_app_graph(prog)

    def test_rectangular_matmul_dims(self):
        prog = LoopProgram("rect")
        prog.declare("A", 4, 6).declare("B", 6, 3).declare("C", 4, 3)
        prog.loop("iA", "matinit", writes="A")
        prog.loop("iB", "matinit", writes="B")
        prog.loop("m", "matmul", writes="C", reads=("A", "B"))
        app = build_app_graph(prog)
        report = ValueExecutor(app).run({"iA": 2, "iB": 2, "m": 2})
        verify_against_reference(app, report)
        assert report.outputs["m"].shape == (4, 3)


class TestCompileLoopProgram:
    def test_bundle_coherent(self):
        bundle = compile_loop_program(pipeline_source())
        # MDG edges and app wiring agree.
        wired = {
            (producer, name)
            for name, node in bundle.app.nodes.items()
            for producer in node.inputs.values()
        }
        assert wired == {(e.source, e.target) for e in bundle.mdg.edges()}

    def test_full_chain_to_schedule(self, cm5_16):
        from repro.pipeline import compile_mdg

        bundle = compile_loop_program(pipeline_source())
        result = compile_mdg(bundle.mdg, cm5_16)
        assert result.schedule.is_complete

    def test_end_to_end_source_to_verified_run(self):
        """The full miniature compiler: source -> MDG -> allocation ->
        schedule -> value execution consistent with that schedule's
        allocation."""
        from repro.allocation.solver import ConvexSolverOptions, solve_allocation
        from repro.machine.presets import cm5
        from repro.scheduling.psa import prioritized_schedule

        machine = cm5(8)
        bundle = compile_loop_program(pipeline_source())
        allocation = solve_allocation(
            bundle.mdg.normalized(), machine,
            ConvexSolverOptions(multistart_targets=(2.0,)),
        )
        schedule = prioritized_schedule(
            bundle.mdg, allocation.processors, machine
        )
        groups = {
            name: width
            for name, width in schedule.allocation().items()
            if not schedule.mdg.node(name).is_dummy
        }
        report = ValueExecutor(bundle.app).run(groups)
        verify_against_reference(bundle.app, report)
